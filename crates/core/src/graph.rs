//! The dynamic temporal graph: vertex space + a pluggable adjacency
//! representation, with directed or undirected edge semantics.
//!
//! Undirected graphs store both orientations (the standard adjacency-list
//! convention the paper's R-MAT experiments use), so one structural update
//! touches two adjacency lists.

use crate::adjacency::{AdjEntry, CapacityHints, DynamicAdjacency};
use crate::csr::{CsrGraph, SnapshotRace};
use snap_rmat::{TimedEdge, Update, UpdateKind};

/// A dynamic graph over representation `A`.
pub struct DynGraph<A: DynamicAdjacency> {
    adj: A,
    directed: bool,
}

impl<A: DynamicAdjacency> DynGraph<A> {
    /// Creates an empty directed graph with `n` vertices.
    pub fn directed(n: usize, hints: &CapacityHints) -> Self {
        Self {
            adj: A::new(n, hints),
            directed: true,
        }
    }

    /// Creates an empty undirected graph with `n` vertices.
    pub fn undirected(n: usize, hints: &CapacityHints) -> Self {
        Self {
            adj: A::new(n, hints),
            directed: false,
        }
    }

    /// Wraps a pre-built adjacency structure (used for [`crate::FixedDynArr`],
    /// whose capacities come from an oracle rather than hints).
    pub fn from_adjacency(adj: A, directed: bool) -> Self {
        Self { adj, directed }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.num_vertices()
    }

    /// True for directed edge semantics.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// The underlying representation.
    pub fn adjacency(&self) -> &A {
        &self.adj
    }

    /// Inserts a timestamped edge (both orientations when undirected).
    /// Thread-safe.
    ///
    /// Returns `true` if *either* orientation stored a new entry. On a
    /// consistent undirected graph the two orientations agree; they can
    /// diverge only if the adjacency was mutated asymmetrically through
    /// [`DynGraph::adjacency`], and reporting the OR keeps such repairs
    /// visible instead of silently dropping the second orientation's
    /// outcome.
    pub fn insert_edge(&self, e: TimedEdge) -> bool {
        let a = self.adj.insert(e.u, AdjEntry::new(e.v, e.timestamp));
        if !self.directed && e.u != e.v {
            let b = self.adj.insert(e.v, AdjEntry::new(e.u, e.timestamp));
            return a | b;
        }
        a
    }

    /// Deletes one occurrence of edge `(u, v)` (both orientations when
    /// undirected). Thread-safe.
    ///
    /// Returns `true` if *either* orientation removed an entry (see
    /// [`DynGraph::insert_edge`] for why the second orientation's outcome
    /// participates).
    pub fn delete_edge(&self, u: u32, v: u32) -> bool {
        let a = self.adj.delete(u, v);
        if !self.directed && u != v {
            let b = self.adj.delete(v, u);
            return a | b;
        }
        a
    }

    /// Applies a single structural update. Thread-safe.
    pub fn apply(&self, upd: &Update) -> bool {
        match upd.kind {
            UpdateKind::Insert => self.insert_edge(upd.edge),
            UpdateKind::Delete => self.delete_edge(upd.edge.u, upd.edge.v),
        }
    }

    /// True if `u`'s adjacency holds `v`.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj.contains(u, v)
    }

    /// Out-degree (live entries) of `u`.
    pub fn degree(&self, u: u32) -> usize {
        self.adj.degree(u)
    }

    /// Iterates `u`'s live adjacency entries.
    pub fn for_each_neighbor(&self, u: u32, f: &mut dyn FnMut(AdjEntry)) {
        self.adj.for_each(u, f)
    }

    /// Total live adjacency entries (each undirected edge counts twice).
    pub fn total_entries(&self) -> usize {
        self.adj.total_entries()
    }

    /// Snapshots the live adjacency into a static CSR for the analysis
    /// kernels (Section 3 reformulates dynamic problems on snapshots).
    ///
    /// # Panics
    ///
    /// Panics if a writer races the build (bulk-synchronous discipline
    /// violated); see [`DynGraph::try_to_csr`] for the checked variant.
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_dynamic(&self.adj, self.directed)
    }

    /// Non-panicking [`DynGraph::to_csr`]: returns
    /// `Err(`[`SnapshotRace`]`)` when a concurrent writer tears the
    /// build (see [`CsrGraph::try_from_dynamic`] for the detection
    /// contract).
    pub fn try_to_csr(&self) -> Result<CsrGraph, SnapshotRace> {
        CsrGraph::try_from_dynamic(&self.adj, self.directed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynarr::DynArr;
    use crate::hybrid::HybridAdj;
    use crate::treapadj::TreapAdj;

    fn hints() -> CapacityHints {
        CapacityHints::new(64)
    }

    #[test]
    fn undirected_insert_stores_both_orientations() {
        let g: DynGraph<DynArr> = DynGraph::undirected(4, &hints());
        g.insert_edge(TimedEdge::new(0, 1, 5));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.total_entries(), 2);
    }

    #[test]
    fn directed_insert_stores_one_orientation() {
        let g: DynGraph<DynArr> = DynGraph::directed(4, &hints());
        g.insert_edge(TimedEdge::new(0, 1, 5));
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.total_entries(), 1);
    }

    #[test]
    fn self_loop_stored_once_even_undirected() {
        let g: DynGraph<DynArr> = DynGraph::undirected(2, &hints());
        g.insert_edge(TimedEdge::new(1, 1, 0));
        assert_eq!(g.degree(1), 1);
        assert!(g.delete_edge(1, 1));
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    fn undirected_delete_removes_both_orientations() {
        let g: DynGraph<TreapAdj> = DynGraph::undirected(3, &hints());
        g.insert_edge(TimedEdge::new(0, 2, 1));
        assert!(g.delete_edge(0, 2));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(2, 0));
    }

    #[test]
    fn apply_dispatches_on_kind() {
        let g: DynGraph<HybridAdj> = DynGraph::undirected(3, &hints());
        let e = TimedEdge::new(0, 1, 9);
        g.apply(&Update::insert(e));
        assert!(g.has_edge(0, 1));
        g.apply(&Update::delete(e));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn asymmetric_states_report_both_orientations() {
        // Mutate one orientation behind the graph's back; the undirected
        // wrappers must still report that *something* changed.
        let g: DynGraph<TreapAdj> = DynGraph::undirected(4, &hints());
        g.adjacency().insert(0, AdjEntry::new(1, 7));
        assert!(
            g.delete_edge(0, 1),
            "half-present edge: the stored orientation's removal must surface"
        );
        assert!(!g.has_edge(0, 1));
        // Same for insertion: (2,3) present only as 3->2, so inserting the
        // full edge stores a new 2->3 entry and must say so.
        g.adjacency().insert(3, AdjEntry::new(2, 9));
        assert!(g.insert_edge(TimedEdge::new(2, 3, 9)));
        assert!(g.has_edge(2, 3));
        assert!(g.has_edge(3, 2));
    }

    #[test]
    fn degrees_track_updates() {
        let g: DynGraph<HybridAdj> = DynGraph::undirected(5, &hints());
        for v in 1..5u32 {
            g.insert_edge(TimedEdge::new(0, v, v));
        }
        assert_eq!(g.degree(0), 4);
        for v in 1..5u32 {
            assert_eq!(g.degree(v), 1);
        }
        g.delete_edge(0, 3);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 0);
    }
}
