//! Dynamic graph representations for massive small-world networks.
//!
//! This crate is the paper's primary contribution (Section 2): data
//! structures that ingest parallel streams of edge insertions and deletions
//! on power-law graphs, and the execution strategies that drive them.
//!
//! # Representations
//!
//! | Type | Insert | Delete | Notes |
//! |---|---|---|---|
//! | [`DynArr`] | O(1) amortized | O(d) scan + tombstone | resizable adjacency arrays in a slab pool |
//! | [`FixedDynArr`] | O(1) lock-free | O(d) scan + tombstone | `Dyn-arr-nr`: capacities known a priori |
//! | [`TreapAdj`] | O(log d) | O(log d), real removal | every adjacency is a treap |
//! | [`HybridAdj`] | O(1)/O(log d) | O(d≤thresh)/O(log d) | arrays below `degree-thresh`, treaps above |
//!
//! # Read paths: snapshot vs live view
//!
//! Every kernel consumes a [`view::GraphView`], which two read paths
//! implement with opposite trade-offs:
//!
//! | Read path | Setup cost | Per-edge cost | Consistency |
//! |---|---|---|---|
//! | [`CsrGraph`] snapshot | O(n + m) rebuild | contiguous slice scan (fastest) | frozen at build time |
//! | [`DynGraph`] live view | zero | per-vertex lock + pointer chase | tracks updates instantly |
//!
//! Rule of thumb: traversal-heavy analytics (BC, diameter, repeated BFS
//! bursts) want the snapshot; cheap point queries (degree probes, one
//! s-t check) and freshness-critical reads want the live view. The
//! [`engine::SnapshotManager`] automates the choice's bookkeeping: it
//! tracks a dirty epoch and rebuilds the cached snapshot lazily, so a
//! burst of queries between update batches pays for one rebuild.
//!
//! Connectivity queries get a third, cheaper path:
//! [`connectivity::ConnectivityIndex`] is a concurrent union-find
//! maintained incrementally on every insert, with deletion-dirtied
//! components repaired on demand — `same_component(u, v)` between
//! batches costs neither a traversal nor a snapshot. The same
//! dirty-mark + lazy-targeted-repair pattern generalizes into an index
//! family: [`distindex::DistanceIndex`] (exact hop distances from
//! pinned sources) and [`triindex::TriangleIndex`] (per-vertex triangle
//! counts and clustering, delta-maintained).
//!
//! Under *concurrent* ingest — writers that never quiesce — the
//! [`serve::ServeEngine`] generalizes all three: a sharded single-queue
//! writer publishes immutable epoch-tagged versions
//! ([`serve::EpochSnapshot`], CSR + component labels) by pointer swap,
//! so readers pin a consistent snapshot in O(1) while updates stream
//! and a race is impossible by construction.
//!
//! # Execution strategies (Section 2.1.2–2.1.3)
//!
//! [`engine`] implements the streaming applier plus the `Vpart`
//! (vertex-partitioned), `Epart` (edge-partitioned) and batched
//! (semi-sorted) strategies the paper compares in Figure 3.
//!
//! # Phase discipline
//!
//! Mutation methods take `&self` and are safe to call from many threads.
//! Read methods ([`DynamicAdjacency::degree`], traversal, CSR snapshots)
//! are also thread-safe, but the MUPS experiments follow the paper's
//! bulk-synchronous pattern: apply a batch in parallel, then read.

#![deny(missing_docs)]

pub mod adjacency;
pub mod compressed;
pub mod connectivity;
pub mod csr;
pub mod distindex;
pub mod dynarr;
pub mod engine;
pub mod graph;
pub mod hybrid;
pub mod reorder;
pub mod serve;
pub mod slices;
pub mod treapadj;
pub mod triindex;
pub mod view;
pub mod vlabels;

pub use adjacency::{AdjEntry, CapacityHints, DynamicAdjacency, TOMBSTONE};
pub use connectivity::ConnectivityIndex;
pub use csr::{CsrGraph, SnapshotRace};
pub use distindex::{restricted_hop_distances, DistanceIndex};
pub use dynarr::{DynArr, FixedDynArr};
pub use engine::SnapshotManager;
pub use graph::DynGraph;
pub use hybrid::HybridAdj;
pub use serve::{EpochSnapshot, ServeConfig, ServeEngine, SnapshotHandle};
pub use treapadj::TreapAdj;
pub use triindex::TriangleIndex;
pub use view::{GraphView, VertexChunks};
pub use vlabels::VertexLabels;

// Re-export the shared workload types so downstream users need one import.
pub use snap_rmat::{TimedEdge, Update, UpdateKind};
