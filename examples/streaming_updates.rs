//! Streaming ingestion benchmark in miniature: compares how the three
//! dynamic representations absorb a live mix of insertions and deletions,
//! the scenario motivating the paper's hybrid structure (think: a social
//! network's edge stream, where friendships form and dissolve
//! continuously) — then keeps the stream running and serves queries
//! *concurrently* through the [`ServeEngine`]: a background writer
//! ingests batches and publishes immutable epoch-tagged versions while
//! the foreground pins snapshots, runs BFS on them, and answers
//! `same_component` probes from the published labels.
//!
//! ```text
//! cargo run --release --example streaming_updates [scale]
//! ```

use snap::prelude::*;
use std::time::Instant;

fn ingest<A: DynamicAdjacency>(name: &str, n: usize, base: &[Update], batches: &[Vec<Update>]) {
    let hints = CapacityHints::new(base.len() * 3);
    let graph: DynGraph<A> = DynGraph::undirected(n, &hints);
    engine::apply_stream(&graph, base);
    let t = Instant::now();
    let mut applied = 0usize;
    for batch in batches {
        engine::apply_stream(&graph, batch);
        applied += batch.len();
    }
    let secs = t.elapsed().as_secs_f64();
    println!(
        "{name:>8}: {applied} updates in {secs:.3} s = {:.2} MUPS, {} live entries, {:.1} MB",
        applied as f64 / secs / 1e6,
        graph.total_entries(),
        graph.adjacency().memory_bytes() as f64 / (1 << 20) as f64,
    );
}

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(14);
    let n = 1usize << scale;
    let rmat = Rmat::new(RmatParams::paper(scale, 8), 7);
    let edges = rmat.edges();
    let builder = StreamBuilder::new(&edges, 7);
    let base = builder.construction_shuffled();

    // Ten arriving batches, each 75% insertions / 25% deletions — the
    // Figure 6 mix, delivered incrementally as a stream would be.
    let batches: Vec<Vec<Update>> = (0..10)
        .map(|i| StreamBuilder::new(&edges, 100 + i).mixed(edges.len() / 50, 0.75))
        .collect();

    println!(
        "stream scenario: n = {n}, base graph m = {}, {} batches of {} updates",
        edges.len(),
        batches.len(),
        batches[0].len()
    );
    ingest::<DynArr>("Dyn-arr", n, &base, &batches);
    ingest::<TreapAdj>("Treaps", n, &base, &batches);
    ingest::<HybridAdj>("Hybrid", n, &base, &batches);

    serve_concurrently(n, &edges, &base, &batches);
}

/// The serving path: ingest never stops, queries never wait. The engine's
/// writer thread drains the submitted batches in the background, applies
/// them sharded across the update engine's workers, repairs the
/// connectivity index incrementally, and publishes each new version by a
/// single pointer swap — so every foreground read below runs against one
/// consistent epoch, pinned in O(1), while newer epochs keep landing.
fn serve_concurrently(n: usize, edges: &[TimedEdge], base: &[Update], batches: &[Vec<Update>]) {
    let hints = CapacityHints::new(base.len() * 3);
    let graph: DynGraph<HybridAdj> = DynGraph::undirected(n, &hints);
    engine::apply_stream(&graph, base);
    let engine = ServeEngine::new(graph, ServeConfig::default());

    println!("\nconcurrent serving: background ingest + foreground queries");
    // Background: stream every batch into the ingest queue (returns
    // immediately; the writer thread applies and publishes).
    for batch in batches {
        engine.submit(batch.clone());
    }

    // Foreground, concurrently: pin whatever version is current and query
    // it. The pinned snapshot is immutable — a long traversal sees one
    // epoch even as the writer publishes newer ones mid-flight.
    let src = edges[0].u;
    let t = Instant::now();
    let mut sampled = 0usize;
    let mut hits = 0usize;
    while engine.pending_batches() > 0 {
        let version = engine.pin();
        let dist = bfs(&*version, src).dist;
        assert_eq!(dist.len(), n);
        let v = (sampled as u32 * 131) % n as u32;
        if engine.same_component(src, v) {
            hits += 1;
        }
        sampled += 1;
        drop(version); // release the pin: old epochs reclaim once unpinned
    }
    engine.flush(); // barrier: every submitted batch is now published
    let final_version = engine.pin();
    println!(
        "  ran {sampled} BFS traversals on pinned mid-stream versions ({hits} \
         probe hits) in {:.3} s while ingesting; final epoch {} \
         ({} updates applied, {} full connectivity rebuilds)",
        t.elapsed().as_secs_f64(),
        final_version.epoch(),
        engine.updates_applied(),
        engine.full_rebuild_count().expect("connectivity enabled"),
    );
    println!(
        "  final version: {} entries, src {} reaches {} vertices",
        final_version.num_entries(),
        src,
        bfs(&*final_version, src)
            .dist
            .iter()
            .filter(|&&d| d != u32::MAX)
            .count(),
    );
}
