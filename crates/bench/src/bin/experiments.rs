//! Regenerates every figure of the paper as a printed series.
//!
//! ```text
//! experiments [fig1 fig2 ... fig11 | parallel | connectivity | bc | ablations | extensions | all]
//! ```
//!
//! Environment: `SNAP_SCALE` (default 16) sets `log2(n)` for the update
//! figures; kernel figures derive their sizes from it. `SNAP_THREADS`
//! (comma list, default `1,2,4,8`) sets the sweep. Shapes, not absolute
//! numbers, are the reproduction target — see EXPERIMENTS.md.
//!
//! `parallel` additionally persists machine-readable medians to
//! `BENCH_parallel.json` (kernel, mode, scale, threads, median ns),
//! `connectivity` to `BENCH_connectivity.json` (incremental index vs
//! recompute-per-query vs snapshot-per-query), `indexes` to
//! `BENCH_indexes.json` (incremental distance and triangle indexes vs
//! recompute-per-query), `bc` to
//! `BENCH_bc.json` (serial vs parallel betweenness, exact and sampled),
//! and `serve` to `BENCH_serving.json` (mixed update+query traffic
//! against the concurrent [`ServeEngine`]: update throughput plus query
//! p50/p99 per client count), so the perf trajectories are tracked
//! across PRs. The `serve` mix is tunable: `SNAP_SERVE_OPS` ops per
//! client (default 40000) at `SNAP_SERVE_WRITE_PCT` percent writes
//! (default 20).

use snap_bench::*;
use snap_core::adjacency::CapacityHints;
use snap_core::compressed::CompressedCsr;
use snap_core::engine;
use snap_core::reorder::Relabeling;
use snap_core::{
    CsrGraph, DynArr, DynGraph, HybridAdj, ServeConfig, ServeEngine, SnapshotManager, TreapAdj,
};
use snap_kernels::bc::sample_sources;
use snap_kernels::{bfs, temporal_bfs, LinkCutForest, TimeWindow};
use snap_rmat::StreamBuilder;
use snap_util::rng::XorShift64;
use snap_util::stats::percentile_sorted;
use snap_util::timer::mups;

fn main() {
    let cfg = Config::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--metrics` (or SNAP_METRICS=1) dumps the process-wide metrics
    // registry to METRICS.json alongside the BENCH_*.json files. Only
    // meaningful with `--features obs`; otherwise the dump is empty.
    let dump_metrics =
        args.iter().any(|a| a == "--metrics") || std::env::var_os("SNAP_METRICS").is_some();
    let selected: Vec<&str> = args
        .iter()
        .map(|s| s.as_str())
        .filter(|a| !a.starts_with("--"))
        .collect();
    let what: Vec<&str> = if selected.is_empty() || selected.contains(&"all") {
        vec![
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "parallel",
            "connectivity",
            "indexes",
            "bc",
            "serve",
            "ablations",
            "extensions",
        ]
    } else {
        selected
    };
    println!(
        "# snap-dynamic experiments (scale={}, n={}, threads={:?}, seed={:#x})",
        cfg.scale,
        cfg.vertices(),
        cfg.threads,
        cfg.seed
    );
    for w in what {
        match w {
            "fig1" => fig1(&cfg),
            "fig2" => fig2(&cfg),
            "fig3" => fig3(&cfg),
            "fig4" => fig4(&cfg),
            "fig5" => fig5(&cfg),
            "fig6" => fig6(&cfg),
            "fig7" => fig7(&cfg),
            "fig8" => fig8(&cfg),
            "fig9" => fig9(&cfg),
            "fig10" => fig10(&cfg),
            "fig11" => fig11(&cfg),
            "parallel" => parallel(&cfg),
            "connectivity" => connectivity(&cfg),
            "indexes" => indexes_bench(&cfg),
            "bc" => bc_bench(&cfg),
            "serve" => serve_bench(&cfg),
            "ablations" => {
                ablation_degree_thresh(&cfg);
                ablation_initial_size(&cfg);
                ablation_delete_policy(&cfg);
            }
            "extensions" => {
                extension_compressed(&cfg);
                extension_reorder(&cfg);
                extension_replacement(&cfg);
            }
            other => eprintln!("unknown experiment: {other}"),
        }
    }
    if dump_metrics {
        write_metrics_json();
    }
}

/// Dumps the global metrics registry as JSON next to the BENCH files.
fn write_metrics_json() {
    if !snap_obs::ENABLED {
        eprintln!("note: built without `--features obs` — METRICS.json will be empty");
    }
    let path = "METRICS.json";
    match std::fs::write(path, snap_obs::MetricsRegistry::global().render_json()) {
        Ok(()) => println!("\nwrote metrics registry to {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// Figure 1: Dyn-arr-nr insertion MUPS vs problem size, min vs max threads.
fn fig1(cfg: &Config) {
    let lo_threads = *cfg.threads.first().expect("thread list non-empty");
    let hi_threads = *cfg.threads.last().expect("thread list non-empty");
    let mut t = Table::new(&["scale", "n", "m", "MUPS@1core", "MUPS@max"]);
    let top = cfg.scale.max(14);
    for scale in (top - 6..=top).step_by(2) {
        // The paper's size sweep uses m = 10n.
        let edges = build_edges(scale, 10, cfg.seed);
        let stream = construction_stream(&edges, cfg.seed);
        let n = 1usize << scale;
        let lo = fixed_construction_mups(n, &stream, lo_threads);
        let hi = fixed_construction_mups(n, &stream, hi_threads);
        t.row(vec![
            scale.to_string(),
            n.to_string(),
            edges.len().to_string(),
            f3(lo),
            f3(hi),
        ]);
    }
    t.print("Figure 1: Dyn-arr-nr insertion rate vs problem size (m = 10n)");
}

/// Figure 2: resize overhead — Dyn-arr (initial capacity 16) vs Dyn-arr-nr
/// across the thread sweep.
fn fig2(cfg: &Config) {
    let edges = build_edges(cfg.scale, cfg.edge_factor, cfg.seed);
    let stream = construction_stream(&edges, cfg.seed);
    let n = cfg.vertices();
    // "The initial array size is set to 16 in this case."
    let hints = CapacityHints {
        expected_edges: 16 * n,
        initial_capacity_factor: 1,
        ..CapacityHints::new(16 * n)
    };
    let mut t = Table::new(&["threads", "Dyn-arr MUPS", "Dyn-arr-nr MUPS", "nr/arr"]);
    for &th in &cfg.threads {
        let arr = construction_mups_hints::<DynArr>(n, &stream, th, &hints);
        let nr = fixed_construction_mups(n, &stream, th);
        t.row(vec![th.to_string(), f3(arr), f3(nr), f3(nr / arr)]);
    }
    t.print("Figure 2: graph construction, Dyn-arr vs Dyn-arr-nr (resize overhead)");
}

/// Figure 3: insert-only — Dyn-arr vs semi-sort bound vs Vpart vs Epart.
fn fig3(cfg: &Config) {
    let edges = build_edges(cfg.scale, cfg.edge_factor, cfg.seed);
    let stream = construction_stream(&edges, cfg.seed);
    let n = cfg.vertices();
    let hints = CapacityHints::new(stream.len() * 2);
    let mut t = Table::new(&[
        "threads",
        "Dyn-arr MUPS",
        "semi-sort bound MUPS",
        "batched MUPS",
        "Vpart MUPS",
        "Epart MUPS",
    ]);
    for &th in &cfg.threads {
        let arr = construction_mups::<DynArr>(n, &stream, th);
        let sortd = in_pool(th, || engine::semi_sort_bound(&stream, n, false));
        let sort_mups = mups(stream.len(), sortd);
        let gb: DynGraph<DynArr> = DynGraph::undirected(n, &hints);
        let (_, bs) = seconds(|| in_pool(th, || engine::apply_batched(&gb, &stream)));
        let gv: DynGraph<DynArr> = DynGraph::undirected(n, &hints);
        let (_, vs) = seconds(|| in_pool(th, || engine::apply_vpart(&gv, &stream, th)));
        let ge: DynGraph<DynArr> = DynGraph::undirected(n, &hints);
        let (_, es) = seconds(|| in_pool(th, || engine::apply_epart(&ge, &stream, th)));
        t.row(vec![
            th.to_string(),
            f3(arr),
            f3(sort_mups),
            f3(stream.len() as f64 / bs / 1e6),
            f3(stream.len() as f64 / vs / 1e6),
            f3(stream.len() as f64 / es / 1e6),
        ]);
    }
    t.print("Figure 3: insertions — Dyn-arr vs batched (bound + actual) vs Vpart vs Epart");
}

/// Figure 4: construction MUPS — Dyn-arr vs Treaps vs Hybrid.
fn fig4(cfg: &Config) {
    let edges = build_edges(cfg.scale, cfg.edge_factor, cfg.seed);
    let stream = construction_stream(&edges, cfg.seed);
    let n = cfg.vertices();
    let mut t = Table::new(&["threads", "Dyn-arr", "Treaps", "Hybrid", "arr/hybrid"]);
    for &th in &cfg.threads {
        let arr = construction_mups::<DynArr>(n, &stream, th);
        let tr = construction_mups::<TreapAdj>(n, &stream, th);
        let hy = construction_mups::<HybridAdj>(n, &stream, th);
        t.row(vec![th.to_string(), f3(arr), f3(tr), f3(hy), f3(arr / hy)]);
    }
    t.print("Figure 4: construction (insertions) MUPS by representation");
}

/// Figure 5: deletion MUPS — Dyn-arr vs Treaps vs Hybrid.
fn fig5(cfg: &Config) {
    let edges = build_edges(cfg.scale, cfg.edge_factor, cfg.seed);
    let n = cfg.vertices();
    // Paper: 20M deletions on a 268M-edge graph (~7.5% of m).
    let del_count = edges.len() / 13;
    let dels = StreamBuilder::new(&edges, cfg.seed).deletions(del_count);
    let mut t = Table::new(&["threads", "Dyn-arr", "Treaps", "Hybrid", "hybrid/arr"]);
    for &th in &cfg.threads {
        let ga: DynGraph<DynArr> = build_graph(n, &edges);
        let arr = apply_mups(&ga, &dels, th);
        let gt: DynGraph<TreapAdj> = build_graph(n, &edges);
        let tr = apply_mups(&gt, &dels, th);
        let gh: DynGraph<HybridAdj> = build_graph(n, &edges);
        let hy = apply_mups(&gh, &dels, th);
        t.row(vec![th.to_string(), f3(arr), f3(tr), f3(hy), f3(hy / arr)]);
    }
    t.print("Figure 5: deletions MUPS by representation");
    fig5_hub_stress(cfg);
}

/// Figure 5 companion: the paper's 20x hybrid-over-Dyn-arr deletion gap
/// comes from O(hub-degree) tombstone scans dominating on its scale-25
/// instance and in-order 2009 hardware. Modern prefetchers stream those
/// scans, so the crossover needs denser hubs to show at laptop scale:
/// edge factor 32 with degree-thresh scaled to 4x the mean degree.
fn fig5_hub_stress(cfg: &Config) {
    let ef = 32usize;
    let edges = build_edges(cfg.scale.min(16), ef, cfg.seed);
    let n = 1usize << cfg.scale.min(16);
    let dels = StreamBuilder::new(&edges, cfg.seed).deletions(edges.len() / 13);
    let thresh = (4 * 2 * ef) as u32;
    let mut t = Table::new(&["threads", "Dyn-arr", "Hybrid(thresh=256)", "hybrid/arr"]);
    for &th in &cfg.threads {
        let ga: DynGraph<DynArr> = build_graph(n, &edges);
        let arr = apply_mups(&ga, &dels, th);
        let hints = CapacityHints::new(edges.len() * 2).with_degree_thresh(thresh);
        let gh: DynGraph<HybridAdj> = DynGraph::undirected(n, &hints);
        engine::apply_stream(&gh, &StreamBuilder::new(&edges, 7).construction());
        let hy = apply_mups(&gh, &dels, th);
        t.row(vec![th.to_string(), f3(arr), f3(hy), f3(hy / arr)]);
    }
    t.print("Figure 5 (hub stress): deletions with dense hubs (m = 32n)");
}

/// Figure 6: mixed stream (75% insert / 25% delete) MUPS.
fn fig6(cfg: &Config) {
    let edges = build_edges(cfg.scale, cfg.edge_factor, cfg.seed);
    let n = cfg.vertices();
    // Paper: 50M updates on a 268M-edge graph (~19% of m).
    let count = edges.len() / 5;
    let mixed = StreamBuilder::new(&edges, cfg.seed).mixed(count, 0.75);
    let mut t = Table::new(&["threads", "Dyn-arr", "Treaps", "Hybrid"]);
    for &th in &cfg.threads {
        let ga: DynGraph<DynArr> = build_graph(n, &edges);
        let arr = apply_mups(&ga, &mixed, th);
        let gt: DynGraph<TreapAdj> = build_graph(n, &edges);
        let tr = apply_mups(&gt, &mixed, th);
        let gh: DynGraph<HybridAdj> = build_graph(n, &edges);
        let hy = apply_mups(&gh, &mixed, th);
        t.row(vec![th.to_string(), f3(arr), f3(tr), f3(hy)]);
    }
    t.print("Figure 6: mixed 75% insert / 25% delete MUPS by representation");
}

/// Figure 7: link-cut tree construction time and speedup.
fn fig7(cfg: &Config) {
    // Paper instance: 10M vertices, 84M edges — edge factor ~8.4.
    let edges = build_edges(cfg.scale, cfg.edge_factor, cfg.seed ^ 7);
    let csr = CsrGraph::from_edges_undirected(cfg.vertices(), &edges);
    let mut base = 0.0;
    let mut t = Table::new(&["threads", "build time (s)", "speedup"]);
    for &th in &cfg.threads {
        let (_, secs) = seconds(|| in_pool(th, || LinkCutForest::from_csr(&csr)));
        if base == 0.0 {
            base = secs;
        }
        t.row(vec![th.to_string(), f3(secs), f3(base / secs)]);
    }
    t.print("Figure 7: link-cut forest construction");
}

/// Figure 8: 1M connectivity queries on the link-cut forest.
fn fig8(cfg: &Config) {
    let edges = build_edges(cfg.scale, cfg.edge_factor, cfg.seed ^ 8);
    let n = cfg.vertices();
    let csr = CsrGraph::from_edges_undirected(n, &edges);
    let forest = LinkCutForest::from_csr(&csr);
    let (mean_depth, max_depth) = forest.depth_stats();
    let mut rng = XorShift64::new(cfg.seed);
    let queries: Vec<(u32, u32)> = (0..1_000_000)
        .map(|_| {
            (
                rng.next_bounded(n as u64) as u32,
                rng.next_bounded(n as u64) as u32,
            )
        })
        .collect();
    let mut base = 0.0;
    let mut t = Table::new(&["threads", "time (s)", "speedup", "Mqueries/s"]);
    for &th in &cfg.threads {
        let (res, secs) = seconds(|| in_pool(th, || forest.connected_batch(&queries)));
        std::hint::black_box(&res);
        if base == 0.0 {
            base = secs;
        }
        t.row(vec![
            th.to_string(),
            f3(secs),
            f3(base / secs),
            f3(queries.len() as f64 / secs / 1e6),
        ]);
    }
    t.print(&format!(
        "Figure 8: 1M connectivity queries (tree depth mean {mean_depth:.2}, max {max_depth})"
    ));
}

/// Figure 9: temporal induced subgraph.
fn fig9(cfg: &Config) {
    // Paper instance: 20M vertices, 200M edges — edge factor 10,
    // timestamps 1..=100, window (20, 70).
    let edges = build_edges(cfg.scale, 10, cfg.seed ^ 9);
    let n = cfg.vertices();
    let w = TimeWindow::open(20, 70);
    let mut base = 0.0;
    let mut t = Table::new(&["threads", "extract+build (s)", "speedup", "kept edges"]);
    for &th in &cfg.threads {
        let (sub, secs) =
            seconds(|| in_pool(th, || snap_kernels::induced_subgraph_csr(n, &edges, w)));
        if base == 0.0 {
            base = secs;
        }
        t.row(vec![
            th.to_string(),
            f3(secs),
            f3(base / secs),
            (sub.num_entries() / 2).to_string(),
        ]);
    }
    t.print("Figure 9: induced subgraph for time interval (20, 70)");
}

/// Figure 10: temporal BFS on the largest instance.
fn fig10(cfg: &Config) {
    // The paper's 500M/4B instance scaled down: two scales above default.
    let scale = cfg.scale + 2;
    let edges = build_edges(scale, cfg.edge_factor, cfg.seed ^ 10);
    let n = 1usize << scale;
    let csr = CsrGraph::from_edges_undirected(n, &edges);
    let src = hub_source(&csr);
    let mut base = 0.0;
    let mut t = Table::new(&["threads", "BFS time (s)", "speedup", "MTEPS", "reached"]);
    for &th in &cfg.threads {
        let (res, secs) = seconds(|| in_pool(th, || temporal_bfs(&csr, src, |ts| ts >= 1)));
        if base == 0.0 {
            base = secs;
        }
        t.row(vec![
            th.to_string(),
            f3(secs),
            f3(base / secs),
            f3(csr.num_entries() as f64 / secs / 1e6),
            res.reached().to_string(),
        ]);
    }
    t.print(&format!(
        "Figure 10: temporal BFS (n = 2^{scale}, m = {})",
        edges.len()
    ));
}

/// Figure 11: approximate temporal betweenness, 256 sampled sources.
/// The kernel is the serial reference implementation (deterministic
/// blocked accumulation — see `snap_kernels::bc`), so this is a single
/// timing, not a thread sweep; the multi-threaded static-BC comparison
/// lives in the `bc` experiment (`snap_par::par_bc`).
fn fig11(cfg: &Config) {
    let edges = build_edges(cfg.scale, cfg.edge_factor, cfg.seed ^ 11);
    let n = cfg.vertices();
    // Paper: vertex/edge time labels in [0, 20].
    let edges: Vec<_> = edges
        .into_iter()
        .map(|mut e| {
            e.timestamp %= 21;
            e
        })
        .collect();
    let csr = CsrGraph::from_edges_undirected(n, &edges);
    let sources = sample_sources(n, 256, cfg.seed);
    let (bc, secs) = seconds(|| snap_kernels::temporal_betweenness_approx(&csr, &sources));
    std::hint::black_box(&bc);
    let mut t = Table::new(&["kernel", "BC time (s)"]);
    t.row(vec!["temporal Brandes (serial)".into(), f3(secs)]);
    t.print("Figure 11: approximate temporal betweenness (256 sources; see `bc` for the parallel kernel)");
}

/// One persisted measurement of the `parallel` experiment.
struct BenchRow {
    kernel: &'static str,
    mode: &'static str,
    threads: usize,
    median_ns: u128,
}

fn row(kernel: &'static str, mode: &'static str, threads: usize, median_ns: u128) -> BenchRow {
    BenchRow {
        kernel,
        mode,
        threads,
        median_ns,
    }
}

/// Median wall-clock nanoseconds of `f` over `reps` runs.
fn median_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> u128 {
    std::hint::black_box(f()); // warm-up, untimed
    let mut samples: Vec<u128> = (0..reps.max(1))
        .map(|_| {
            let start = std::time::Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos()
        })
        .collect();
    snap_util::stats::median(&mut samples).expect("reps >= 1")
}

/// Serial vs parallel kernels (BFS / CC / SSSP) across the thread sweep,
/// persisted to `BENCH_parallel.json` for cross-PR trajectory tracking.
fn parallel(cfg: &Config) {
    use snap_kernels::{connected_components, delta_stepping, dijkstra, serial_bfs};
    use snap_par::{
        par_bfs_stats, par_bfs_with, par_cc_stats, par_cc_with, par_sssp_stats, par_sssp_with,
        ParConfig,
    };

    let edges = build_edges(cfg.scale, cfg.edge_factor, cfg.seed ^ 13);
    let n = cfg.vertices();
    let csr = CsrGraph::from_edges_undirected(n, &edges);
    let src = hub_source(&csr);
    let pcfg = ParConfig::default();
    let delta = 32u64;
    let reps = 9usize;
    let mut rows = vec![
        row(
            "bfs",
            "serial",
            1,
            median_ns(reps, || serial_bfs(&csr, src)),
        ),
        row(
            "cc",
            "serial",
            1,
            median_ns(reps, || connected_components(&csr)),
        ),
        row("sssp", "serial", 1, median_ns(reps, || dijkstra(&csr, src))),
        // Same algorithm as par_sssp, single-threaded: separates the
        // delta-vs-dijkstra algorithm gap from the parallelization gap.
        row(
            "sssp",
            "serial-delta",
            1,
            median_ns(reps, || delta_stepping(&csr, src, delta)),
        ),
    ];
    for &th in &cfg.threads {
        rows.push(row(
            "bfs",
            "parallel",
            th,
            median_ns(reps, || in_pool(th, || par_bfs_with(&csr, src, &pcfg))),
        ));
        rows.push(row(
            "cc",
            "parallel",
            th,
            median_ns(reps, || in_pool(th, || par_cc_with(&csr, &pcfg))),
        ));
        rows.push(row(
            "sssp",
            "parallel",
            th,
            median_ns(reps, || {
                in_pool(th, || par_sssp_with(&csr, src, delta, &pcfg))
            }),
        ));
    }

    let mut t = Table::new(&["kernel", "mode", "threads", "median (ms)", "vs serial"]);
    for r in &rows {
        let serial = rows
            .iter()
            .find(|s| s.kernel == r.kernel && s.mode == "serial")
            .map(|s| s.median_ns)
            .unwrap_or(r.median_ns);
        t.row(vec![
            r.kernel.into(),
            r.mode.into(),
            r.threads.to_string(),
            f3(r.median_ns as f64 / 1e6),
            f3(serial as f64 / r.median_ns.max(1) as f64),
        ]);
    }
    t.print(&format!(
        "Parallel kernels: serial vs snap-par (scale {}, m = {})",
        cfg.scale,
        edges.len()
    ));

    // Scheduling counters: what the adaptive runtime actually decided,
    // per thread count — serial-vs-forked levels, chunking, and steal
    // traffic are observable, not guessed. All-zero sssp rows mean the
    // Auto gate dispatched it to Dijkstra.
    let mut st = Table::new(&[
        "kernel", "threads", "serial", "forked", "chunks", "steals", "edges",
    ]);
    for &th in &cfg.threads {
        let b = in_pool(th, || par_bfs_stats(&csr, src, &pcfg)).1.runtime;
        let c = in_pool(th, || par_cc_stats(&csr, &pcfg)).1;
        let s = in_pool(th, || par_sssp_stats(&csr, src, delta, &pcfg)).1;
        for (kernel, ps) in [("bfs", b), ("cc", c), ("sssp", s)] {
            st.row(vec![
                kernel.into(),
                th.to_string(),
                ps.serial_levels.to_string(),
                ps.forked_levels.to_string(),
                ps.chunks_built.to_string(),
                ps.steals.to_string(),
                ps.edges_scanned.to_string(),
            ]);
        }
    }
    st.print("Adaptive scheduling counters (levels run serial vs forked)");

    write_bench_json(cfg, &rows);
    enforce_scaling_gate(&rows);
}

/// `SNAP_SCALING_GATE=<ratio>` (CI smoke): exits non-zero if any
/// parallel kernel's median at t > 1 threads exceeds `ratio` times its
/// own 1-thread median — threads must never make a kernel slower.
fn enforce_scaling_gate(rows: &[BenchRow]) {
    let Ok(gate) = std::env::var("SNAP_SCALING_GATE") else {
        return;
    };
    let Ok(gate) = gate.parse::<f64>() else {
        eprintln!("SNAP_SCALING_GATE={gate:?} is not a number; ignoring");
        return;
    };
    let mut violations = 0usize;
    for r in rows
        .iter()
        .filter(|r| r.mode == "parallel" && r.threads > 1)
    {
        let Some(base) = rows
            .iter()
            .find(|b| b.kernel == r.kernel && b.mode == "parallel" && b.threads == 1)
        else {
            continue;
        };
        let ratio = r.median_ns as f64 / base.median_ns.max(1) as f64;
        if ratio > gate {
            eprintln!(
                "scaling gate violated: {} @ {}t is {ratio:.2}x its 1-thread median (gate {gate:.2})",
                r.kernel, r.threads
            );
            violations += 1;
        }
    }
    if violations > 0 {
        std::process::exit(1);
    }
    println!("scaling gate {gate:.2}: all parallel medians within bound");
}

/// Persists the `parallel` rows as JSON (no serde in the build
/// environment; the schema is flat enough to emit by hand).
fn write_bench_json(cfg: &Config, rows: &[BenchRow]) {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"kernel\": \"{}\", \"mode\": \"{}\", \"scale\": {}, \"threads\": {}, \"median_ns\": {}}}{}\n",
            r.kernel,
            r.mode,
            cfg.scale,
            r.threads,
            r.median_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    let path = "BENCH_parallel.json";
    match std::fs::write(path, &out) {
        Ok(()) => println!("\nwrote {} rows to {path}", rows.len()),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// One persisted measurement of the `bc` experiment.
struct BcRow {
    mode: &'static str,
    scale: u32,
    threads: usize,
    sources: usize,
    median_ns: u128,
}

/// Betweenness centrality: the serial Brandes kernel vs the multi-source
/// parallel kernel (`snap_par::par_bc`), exact at a small instance
/// (exact BC is O(n(n + m))) and 256-source sampled (the paper's sample
/// size) at serving scale, across the thread sweep. Scores are
/// bit-identical between the two kernels, so the comparison is pure
/// throughput. Persists machine-readable medians to `BENCH_bc.json`.
fn bc_bench(cfg: &Config) {
    use snap_kernels::{betweenness_approx, betweenness_exact};
    use snap_par::{par_bc_with, BcConfig, ParConfig};

    let reps = 3usize;
    let pcfg = ParConfig::default();
    let mut rows: Vec<BcRow> = Vec::new();

    // --- Exact: every vertex a source, small instance ----------------
    let exact_scale = cfg.scale.min(10);
    let n = 1usize << exact_scale;
    let edges = build_edges(exact_scale, cfg.edge_factor, cfg.seed ^ 19);
    let csr = CsrGraph::from_edges_undirected(n, &edges);
    rows.push(BcRow {
        mode: "serial-exact",
        scale: exact_scale,
        threads: 1,
        sources: n,
        median_ns: median_ns(reps, || betweenness_exact(&csr)),
    });
    let exact = BcConfig::exact();
    for &th in &cfg.threads {
        rows.push(BcRow {
            mode: "par-exact",
            scale: exact_scale,
            threads: th,
            sources: n,
            median_ns: median_ns(reps, || in_pool(th, || par_bc_with(&csr, &exact, &pcfg))),
        });
    }

    // --- Sampled: 256 sources at serving scale ------------------------
    let k = 256usize;
    let samp_scale = cfg.scale.clamp(12, 14);
    let n = 1usize << samp_scale;
    let edges = build_edges(samp_scale, cfg.edge_factor, cfg.seed ^ 23);
    let csr = CsrGraph::from_edges_undirected(n, &edges);
    let srcs = sample_sources(n, k, cfg.seed);
    rows.push(BcRow {
        mode: "serial-sampled",
        scale: samp_scale,
        threads: 1,
        sources: k,
        median_ns: median_ns(reps, || betweenness_approx(&csr, &srcs)),
    });
    let sampled = BcConfig::sampled(k, cfg.seed);
    for &th in &cfg.threads {
        rows.push(BcRow {
            mode: "par-sampled",
            scale: samp_scale,
            threads: th,
            sources: k,
            median_ns: median_ns(reps, || in_pool(th, || par_bc_with(&csr, &sampled, &pcfg))),
        });
    }

    let mut t = Table::new(&[
        "mode",
        "scale",
        "threads",
        "sources",
        "median (ms)",
        "vs serial",
    ]);
    for r in &rows {
        let serial_mode = if r.mode.ends_with("exact") {
            "serial-exact"
        } else {
            "serial-sampled"
        };
        let serial = rows
            .iter()
            .find(|s| s.mode == serial_mode)
            .map(|s| s.median_ns)
            .unwrap_or(r.median_ns);
        t.row(vec![
            r.mode.into(),
            r.scale.to_string(),
            r.threads.to_string(),
            r.sources.to_string(),
            f3(r.median_ns as f64 / 1e6),
            f3(serial as f64 / r.median_ns.max(1) as f64),
        ]);
    }
    t.print("Betweenness centrality: serial Brandes vs par_bc (bit-identical scores)");
    write_bc_json(&rows);
}

/// Persists the `bc` rows as JSON (hand-emitted; no serde).
fn write_bc_json(rows: &[BcRow]) {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"kernel\": \"bc\", \"mode\": \"{}\", \"scale\": {}, \"threads\": {}, \"sources\": {}, \"median_ns\": {}}}{}\n",
            r.mode,
            r.scale,
            r.threads,
            r.sources,
            r.median_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    let path = "BENCH_bc.json";
    match std::fs::write(path, &out) {
        Ok(()) => println!("\nwrote {} rows to {path}", rows.len()),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// One persisted measurement of the `connectivity` experiment.
struct ConnRow {
    workload: &'static str,
    method: &'static str,
    queries: usize,
    /// `per_query` for bursts, `per_round` for the serving mix.
    unit: &'static str,
    median_ns: u128,
}

/// Dynamic connectivity serving: the incremental `ConnectivityIndex`
/// against the two traversal-based baselines — a full recompute per
/// query on the live view, and a naive snapshot-rebuild per query —
/// followed by a mixed insert/delete/query serving loop. Persists
/// machine-readable medians to `BENCH_connectivity.json`.
fn connectivity(cfg: &Config) {
    use snap_kernels::connected_components;

    let scale = cfg.scale.min(16);
    let edges = build_edges(scale, cfg.edge_factor, cfg.seed ^ 17);
    let n = 1usize << scale;
    let hints = CapacityHints::new(edges.len() * 2);
    let mgr = SnapshotManager::new(DynGraph::<HybridAdj>::undirected(n, &hints));
    mgr.enable_connectivity();
    mgr.apply_batch(&construction_stream(&edges, cfg.seed));

    let mut rng = XorShift64::new(cfg.seed ^ 0x51);
    fn rand_pair(rng: &mut XorShift64, n: usize) -> (u32, u32) {
        (
            rng.next_bounded(n as u64) as u32,
            rng.next_bounded(n as u64) as u32,
        )
    }
    let burst: Vec<(u32, u32)> = (0..100_000).map(|_| rand_pair(&mut rng, n)).collect();
    let mut rows = Vec::new();

    // --- Clean query burst -------------------------------------------
    // Index: near-O(alpha) per query, no traversal, no snapshot.
    let total = median_ns(5, || {
        burst
            .iter()
            .filter(|&&(u, v)| mgr.same_component(u, v))
            .count()
    });
    rows.push(ConnRow {
        workload: "clean_burst",
        method: "index",
        queries: burst.len(),
        unit: "per_query",
        median_ns: total / burst.len() as u128,
    });
    let idx = mgr.connectivity().expect("enabled above");
    assert_eq!(mgr.rebuild_count(), 0, "index burst must not build CSR");
    assert_eq!(idx.full_rebuild_count(), 0);
    assert_eq!(idx.repair_count(), 0, "clean burst must not repair");

    // Recompute-per-query: a full CC pass on the live view, per query.
    let probes = &burst[..4];
    let total = median_ns(3, || {
        probes
            .iter()
            .filter(|&&(u, v)| {
                let labels = connected_components(mgr.live());
                labels[u as usize] == labels[v as usize]
            })
            .count()
    });
    rows.push(ConnRow {
        workload: "clean_burst",
        method: "recompute_per_query",
        queries: probes.len(),
        unit: "per_query",
        median_ns: total / probes.len() as u128,
    });

    // Snapshot-per-query: rebuild the CSR, then a CC pass on it — what a
    // naive client of the snapshot API pays after every update.
    let total = median_ns(3, || {
        probes
            .iter()
            .filter(|&&(u, v)| {
                mgr.mark_dirty(); // defeat the epoch cache: fresh build per query
                let s = mgr.snapshot();
                let labels = connected_components(&*s);
                labels[u as usize] == labels[v as usize]
            })
            .count()
    });
    rows.push(ConnRow {
        workload: "clean_burst",
        method: "snapshot_per_query",
        queries: probes.len(),
        unit: "per_query",
        median_ns: total / probes.len() as u128,
    });
    // mark_dirty left the index's epoch behind on purpose; resync once so
    // the serving phase below starts incremental again.
    let _ = mgr.component(0);

    // --- Mixed insert/delete/query serving loop ----------------------
    // Each round: one 256-update batch (70% insert / 30% delete of live
    // edges), then a query burst. The index path repairs dirtied
    // components lazily; the recompute path pays a full CC per query.
    let mut live: Vec<(u32, u32)> = edges.iter().map(|e| (e.u, e.v)).collect();
    fn round_batch(
        rng: &mut XorShift64,
        live: &mut Vec<(u32, u32)>,
        n: usize,
    ) -> Vec<snap_rmat::Update> {
        (0..256)
            .map(|_| {
                if rng.next_bounded(10) < 3 && !live.is_empty() {
                    let i = rng.next_bounded(live.len() as u64) as usize;
                    let (u, v) = live.swap_remove(i);
                    snap_rmat::Update::delete(snap_rmat::TimedEdge::new(u, v, 0))
                } else {
                    let (u, v) = rand_pair(rng, n);
                    live.push((u, v));
                    snap_rmat::Update::insert(snap_rmat::TimedEdge::new(
                        u,
                        v,
                        rng.next_bounded(90) as u32 + 1,
                    ))
                }
            })
            .collect()
    }
    let median_round =
        |samples: &mut Vec<u128>| snap_util::stats::median(samples).expect("rounds >= 1");

    let rounds = 9usize;
    let q_index = 1024usize;
    let mut samples = Vec::new();
    for _ in 0..rounds {
        let batch = round_batch(&mut rng, &mut live, n);
        let queries: Vec<(u32, u32)> = (0..q_index).map(|_| rand_pair(&mut rng, n)).collect();
        let start = std::time::Instant::now();
        mgr.apply_batch(&batch);
        let hits = queries
            .iter()
            .filter(|&&(u, v)| mgr.same_component(u, v))
            .count();
        std::hint::black_box(hits);
        samples.push(start.elapsed().as_nanos());
    }
    rows.push(ConnRow {
        workload: "serving_mix",
        method: "index",
        queries: q_index,
        unit: "per_round",
        median_ns: median_round(&mut samples),
    });
    let repairs = idx.repair_count();
    assert_eq!(idx.full_rebuild_count(), 1, "only the burst-section resync");

    let q_recompute = 2usize;
    let mut samples = Vec::new();
    for _ in 0..rounds {
        let batch = round_batch(&mut rng, &mut live, n);
        let queries: Vec<(u32, u32)> = (0..q_recompute).map(|_| rand_pair(&mut rng, n)).collect();
        let start = std::time::Instant::now();
        engine::apply_stream(mgr.live(), &batch);
        let hits = queries
            .iter()
            .filter(|&&(u, v)| {
                let labels = connected_components(mgr.live());
                labels[u as usize] == labels[v as usize]
            })
            .count();
        std::hint::black_box(hits);
        samples.push(start.elapsed().as_nanos());
    }
    // The recompute baseline mutated live() directly (the whole point:
    // no manager bookkeeping on its path), so honor the escape-hatch
    // contract before anyone queries the manager again.
    mgr.mark_dirty();
    rows.push(ConnRow {
        workload: "serving_mix",
        method: "recompute_per_query",
        queries: q_recompute,
        unit: "per_round",
        median_ns: median_round(&mut samples),
    });

    let mut t = Table::new(&["workload", "method", "queries", "unit", "median (us)"]);
    for r in &rows {
        t.row(vec![
            r.workload.into(),
            r.method.into(),
            r.queries.to_string(),
            r.unit.into(),
            f3(r.median_ns as f64 / 1e3),
        ]);
    }
    t.print(&format!(
        "Connectivity serving: index vs recompute vs snapshot (scale {scale}, m = {}, {repairs} targeted repairs)",
        edges.len()
    ));
    write_connectivity_json(scale, &rows);
}

/// Persists the `connectivity` rows as JSON (hand-emitted; no serde).
fn write_connectivity_json(scale: u32, rows: &[ConnRow]) {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"workload\": \"{}\", \"method\": \"{}\", \"scale\": {}, \"queries\": {}, \"unit\": \"{}\", \"median_ns\": {}}}{}\n",
            r.workload,
            r.method,
            scale,
            r.queries,
            r.unit,
            r.median_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    let path = "BENCH_connectivity.json";
    match std::fs::write(path, &out) {
        Ok(()) => println!("\nwrote {} rows to {path}", rows.len()),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// One persisted measurement of the `indexes` experiment.
struct IndexRow {
    index: &'static str,
    method: &'static str,
    queries: usize,
    median_ns: u128,
}

/// Incremental index serving: the `DistanceIndex` and
/// `TriangleIndex` against recompute-per-query baselines (a full BFS
/// from the source, and a full triangle count, per query) after a mixed
/// insert/delete stream that exercises the incremental maintenance
/// path. The acceptance check asserts neither index ever fell back to a
/// full rebuild. Persists medians to `BENCH_indexes.json`.
fn indexes_bench(cfg: &Config) {
    use snap_kernels::{bfs, triangle_count};

    let scale = cfg.scale.min(16);
    let edges = build_edges(scale, cfg.edge_factor, cfg.seed ^ 31);
    let n = 1usize << scale;
    let hints = CapacityHints::new(edges.len() * 2);
    let mgr = SnapshotManager::new(DynGraph::<HybridAdj>::undirected(n, &hints));
    mgr.apply_batch(&construction_stream(&edges, cfg.seed));
    let sources: Vec<u32> = (0..4).map(|i| (i * n / 4) as u32).collect();
    mgr.enable_distances(&sources);
    mgr.enable_triangles();

    // Mixed serving stream: the indexes must absorb it incrementally
    // (insert wavefronts / dirty-marks / deltas), never by recompute.
    let mut rng = XorShift64::new(cfg.seed ^ 0x1D);
    let mut live: Vec<(u32, u32)> = edges.iter().map(|e| (e.u, e.v)).collect();
    for _ in 0..9 {
        let batch: Vec<snap_rmat::Update> = (0..256)
            .map(|_| {
                if rng.next_bounded(10) < 3 && !live.is_empty() {
                    let i = rng.next_bounded(live.len() as u64) as usize;
                    let (u, v) = live.swap_remove(i);
                    snap_rmat::Update::delete(snap_rmat::TimedEdge::new(u, v, 0))
                } else {
                    let u = rng.next_bounded(n as u64) as u32;
                    let v = rng.next_bounded(n as u64) as u32;
                    live.push((u, v));
                    snap_rmat::Update::insert(snap_rmat::TimedEdge::new(u, v, 1))
                }
            })
            .collect();
        mgr.apply_batch(&batch);
        // Interleaved probes repair dirtied rows lazily, as a server
        // would between batches.
        std::hint::black_box(mgr.hop_distance(sources[0], (n - 1) as u32));
        std::hint::black_box(mgr.triangle_count());
    }

    let mut rows = Vec::new();
    let burst: Vec<(u32, u32)> = (0..100_000)
        .map(|_| {
            (
                sources[rng.next_bounded(sources.len() as u64) as usize],
                rng.next_bounded(n as u64) as u32,
            )
        })
        .collect();

    // --- Distance: indexed point queries vs a BFS per query ----------
    let total = median_ns(5, || {
        burst
            .iter()
            .filter(|&&(s, v)| mgr.hop_distance(s, v).is_some())
            .count()
    });
    rows.push(IndexRow {
        index: "distance",
        method: "index",
        queries: burst.len(),
        median_ns: total / burst.len() as u128,
    });
    let probes = &burst[..4];
    let total = median_ns(3, || {
        probes
            .iter()
            .filter(|&&(s, v)| bfs(mgr.live(), s).dist[v as usize] != u32::MAX)
            .count()
    });
    rows.push(IndexRow {
        index: "distance",
        method: "recompute_per_query",
        queries: probes.len(),
        median_ns: total / probes.len() as u128,
    });

    // --- Triangles: indexed global count vs a full count per query ---
    let total = median_ns(5, || {
        (0..burst.len()).map(|_| mgr.triangle_count()).sum::<u64>()
    });
    rows.push(IndexRow {
        index: "triangle",
        method: "index",
        queries: burst.len(),
        median_ns: total / burst.len() as u128,
    });
    let total = median_ns(3, || {
        (0..3).map(|_| triangle_count(mgr.live())).sum::<u64>()
    });
    rows.push(IndexRow {
        index: "triangle",
        method: "recompute_per_query",
        queries: 3,
        median_ns: total / 3,
    });

    let dist_idx = mgr.distance_index().expect("enabled above");
    let tri_idx = mgr.triangle_index().expect("enabled above");
    assert_eq!(
        dist_idx.full_rebuild_count(),
        0,
        "distance stayed incremental"
    );
    assert_eq!(
        tri_idx.full_rebuild_count(),
        0,
        "triangles stayed incremental"
    );

    let mut t = Table::new(&["index", "method", "queries", "median (ns)", "speedup"]);
    for r in &rows {
        let recompute = rows
            .iter()
            .find(|s| s.index == r.index && s.method == "recompute_per_query")
            .map(|s| s.median_ns)
            .unwrap_or(r.median_ns);
        t.row(vec![
            r.index.into(),
            r.method.into(),
            r.queries.to_string(),
            r.median_ns.to_string(),
            f3(recompute as f64 / r.median_ns.max(1) as f64),
        ]);
    }
    t.print(&format!(
        "Incremental indexes: indexed queries vs recompute-per-query (scale {scale}, {} targeted distance repairs, {} triangle deltas, 0 full rebuilds)",
        dist_idx.repair_count(),
        tri_idx.delta_count()
    ));
    write_indexes_json(scale, &rows);
}

/// Persists the `indexes` rows as JSON (hand-emitted; no serde).
fn write_indexes_json(scale: u32, rows: &[IndexRow]) {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"index\": \"{}\", \"method\": \"{}\", \"scale\": {}, \"queries\": {}, \"median_ns\": {}}}{}\n",
            r.index,
            r.method,
            scale,
            r.queries,
            r.median_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    let path = "BENCH_indexes.json";
    match std::fs::write(path, &out) {
        Ok(()) => println!("\nwrote {} rows to {path}", rows.len()),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

struct ServeRow {
    clients: usize,
    write_pct: u64,
    ops: usize,
    updates: u64,
    update_mups: f64,
    query_p50_ns: u64,
    query_p99_ns: u64,
    epochs: u64,
}

/// Concurrent serving benchmark: N client threads drive mixed
/// update+query traffic against a [`ServeEngine`]. Writes submit
/// 64-update mixed batches into the ingest queue; reads are
/// `same_component` probes served from the current version's published
/// labels. Reported per client count: update throughput (MUPS, measured
/// over the full run including the final flush) and query latency
/// p50/p99 — the acceptance check asserts the incremental connectivity
/// path never fell back to a full rebuild.
fn serve_bench(cfg: &Config) {
    // SNAP_METRICS_ADDR (e.g. 127.0.0.1:9184) serves live Prometheus
    // text at GET /metrics for the duration of the benchmark. Requires
    // `--features obs`; without it the bind is refused up front.
    let _metrics_server = std::env::var("SNAP_METRICS_ADDR").ok().and_then(|addr| {
        match snap_obs::MetricsRegistry::global().serve_http(&addr) {
            Ok(srv) => {
                println!("# serving live metrics at http://{}/metrics", srv.addr());
                Some(srv)
            }
            Err(e) => {
                eprintln!("cannot serve metrics on {addr}: {e}");
                None
            }
        }
    });
    let ops_per_client: usize = std::env::var("SNAP_SERVE_OPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    let write_pct: u64 = std::env::var("SNAP_SERVE_WRITE_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let n = cfg.vertices();
    let edges = build_edges(cfg.scale, cfg.edge_factor, cfg.seed);
    let base = construction_stream(&edges, cfg.seed);
    let mut rows: Vec<ServeRow> = Vec::new();
    for &clients in &cfg.threads {
        let hints = CapacityHints::new(edges.len() * 3);
        let g: DynGraph<HybridAdj> = DynGraph::undirected(n, &hints);
        for u in &base {
            g.apply(u);
        }
        let engine = ServeEngine::new(g, ServeConfig::default());
        let engine = &engine;
        let edges = &edges;
        let (latencies, secs) = seconds(|| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        scope.spawn(move || {
                            let mut rng =
                                XorShift64::new(cfg.seed ^ (c as u64).wrapping_mul(0x9E37));
                            let mut lat = Vec::with_capacity(ops_per_client);
                            for i in 0..ops_per_client {
                                if rng.next_bounded(100) < write_pct {
                                    let seed = cfg.seed + (c * ops_per_client + i) as u64;
                                    engine.submit(StreamBuilder::new(edges, seed).mixed(64, 0.7));
                                } else {
                                    let u = rng.next_bounded(n as u64) as u32;
                                    let v = rng.next_bounded(n as u64) as u32;
                                    let t = std::time::Instant::now();
                                    std::hint::black_box(engine.same_component(u, v));
                                    lat.push(t.elapsed().as_nanos() as u64);
                                }
                            }
                            lat
                        })
                    })
                    .collect();
                let mut all: Vec<u64> = Vec::new();
                for h in handles {
                    all.extend(h.join().expect("serve client panicked"));
                }
                engine.flush();
                all
            })
        });
        assert_eq!(
            engine.full_rebuild_count(),
            Some(0),
            "serving must stay on the incremental connectivity path"
        );
        let mut latencies = latencies;
        latencies.sort_unstable();
        let pct = |p: f64| percentile_sorted(&latencies, p).unwrap_or(0);
        let updates = engine.updates_applied();
        rows.push(ServeRow {
            clients,
            write_pct,
            ops: ops_per_client * clients,
            updates,
            update_mups: updates as f64 / secs / 1e6,
            query_p50_ns: pct(0.50),
            query_p99_ns: pct(0.99),
            epochs: engine.epoch(),
        });
    }
    let mut t = Table::new(&[
        "clients",
        "write%",
        "ops",
        "updates",
        "update MUPS",
        "query p50 (ns)",
        "query p99 (ns)",
        "epochs",
    ]);
    for r in &rows {
        t.row(vec![
            r.clients.to_string(),
            r.write_pct.to_string(),
            r.ops.to_string(),
            r.updates.to_string(),
            f3(r.update_mups),
            r.query_p50_ns.to_string(),
            r.query_p99_ns.to_string(),
            r.epochs.to_string(),
        ]);
    }
    t.print(&format!(
        "Concurrent serving: mixed update+query clients on ServeEngine (scale {}, {}% writes, 0 full rebuilds)",
        cfg.scale, write_pct
    ));
    write_serving_json(cfg.scale, &rows);
}

/// Persists the `serve` rows as JSON (hand-emitted; no serde).
fn write_serving_json(scale: u32, rows: &[ServeRow]) {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"scale\": {}, \"clients\": {}, \"write_pct\": {}, \"ops\": {}, \"updates\": {}, \"update_mups\": {:.3}, \"query_p50_ns\": {}, \"query_p99_ns\": {}, \"epochs\": {}, \"full_rebuilds\": 0}}{}\n",
            scale,
            r.clients,
            r.write_pct,
            r.ops,
            r.updates,
            r.update_mups,
            r.query_p50_ns,
            r.query_p99_ns,
            r.epochs,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    let path = "BENCH_serving.json";
    match std::fs::write(path, &out) {
        Ok(()) => println!("\nwrote {} rows to {path}", rows.len()),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// Ablation: hybrid degree threshold sweep on the mixed workload.
fn ablation_degree_thresh(cfg: &Config) {
    let edges = build_edges(cfg.scale, cfg.edge_factor, cfg.seed);
    let n = cfg.vertices();
    let mixed = StreamBuilder::new(&edges, cfg.seed).mixed(edges.len() / 5, 0.5);
    let th = *cfg.threads.last().expect("thread list non-empty");
    let mut t = Table::new(&["degree-thresh", "mixed MUPS", "treap vertices"]);
    for thresh in [4u32, 8, 16, 32, 64, 128, 256] {
        let hints = CapacityHints::new(edges.len() * 2).with_degree_thresh(thresh);
        let g: DynGraph<HybridAdj> = DynGraph::undirected(n, &hints);
        let stream = StreamBuilder::new(&edges, 7).construction();
        engine::apply_stream(&g, &stream);
        let rate = apply_mups(&g, &mixed, th);
        t.row(vec![
            thresh.to_string(),
            f3(rate),
            g.adjacency().treap_vertex_count().to_string(),
        ]);
    }
    t.print("Ablation: Hybrid degree-thresh sweep (50/50 mixed updates)");
}

/// Ablation: Dyn-arr initial capacity factor `k` (paper picks k = 2).
fn ablation_initial_size(cfg: &Config) {
    let edges = build_edges(cfg.scale, cfg.edge_factor, cfg.seed);
    let stream = construction_stream(&edges, cfg.seed);
    let n = cfg.vertices();
    let th = *cfg.threads.last().expect("thread list non-empty");
    let mut t = Table::new(&["k (init cap = k*m/n)", "MUPS", "resizes", "pool MB"]);
    for k in [0usize, 1, 2, 4] {
        // k = 0 approximates "start tiny": capacity floor of 4.
        let hints = CapacityHints::new(stream.len() * 2).with_initial_capacity_factor(k);
        let g: DynGraph<DynArr> = DynGraph::undirected(n, &hints);
        let d = in_pool(th, || engine::apply_stream_timed(&g, &stream));
        t.row(vec![
            k.to_string(),
            f3(mups(stream.len(), d)),
            g.adjacency().resize_count().to_string(),
            (g.adjacency().pool().reserved_bytes() / (1 << 20)).to_string(),
        ]);
    }
    t.print("Ablation: Dyn-arr initial capacity factor");
}

/// Ablation: deletion policy — tombstone scan (Dyn-arr) vs compacting
/// swap-remove array (Hybrid with an unreachable threshold) vs treap.
fn ablation_delete_policy(cfg: &Config) {
    let edges = build_edges(cfg.scale, cfg.edge_factor, cfg.seed);
    let n = cfg.vertices();
    let dels = StreamBuilder::new(&edges, cfg.seed).deletions(edges.len() / 13);
    let th = *cfg.threads.last().expect("thread list non-empty");
    let ga: DynGraph<DynArr> = build_graph(n, &edges);
    let tomb = apply_mups(&ga, &dels, th);
    let hints = CapacityHints::new(edges.len() * 2).with_degree_thresh(u32::MAX);
    let gc: DynGraph<HybridAdj> = DynGraph::undirected(n, &hints);
    engine::apply_stream(&gc, &StreamBuilder::new(&edges, 7).construction());
    let compact = apply_mups(&gc, &dels, th);
    let gt: DynGraph<TreapAdj> = build_graph(n, &edges);
    let treap = apply_mups(&gt, &dels, th);
    let mut t = Table::new(&["policy", "deletion MUPS"]);
    t.row(vec!["tombstone array (Dyn-arr)".into(), f3(tomb)]);
    t.row(vec!["compacting array (swap-remove)".into(), f3(compact)]);
    t.row(vec!["treap".into(), f3(treap)]);
    t.print("Ablation: deletion policy");
}

/// Extension: compressed CSR footprint and decode cost.
fn extension_compressed(cfg: &Config) {
    let edges = build_edges(cfg.scale, cfg.edge_factor, cfg.seed);
    let csr = CsrGraph::from_edges_undirected(cfg.vertices(), &edges);
    let (comp, build_s) = seconds(|| CompressedCsr::from_csr(&csr));
    let (sum, scan_s) = seconds(|| {
        let mut acc = 0u64;
        for u in 0..csr.num_vertices() as u32 {
            comp.for_each_neighbor(u, |v| acc += v as u64);
        }
        acc
    });
    std::hint::black_box(sum);
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec![
        "CSR neighbor bytes".into(),
        (csr.num_entries() * 4).to_string(),
    ]);
    t.row(vec![
        "compressed payload bytes".into(),
        comp.payload_bytes().to_string(),
    ]);
    t.row(vec!["compression ratio".into(), f3(comp.ratio_vs_csr())]);
    t.row(vec!["encode time (s)".into(), f3(build_s)]);
    t.row(vec!["full decode scan (s)".into(), f3(scan_s)]);
    t.print("Extension: delta+varint compressed adjacency");
}

/// Extension: degree-descending reordering effect on BFS.
fn extension_reorder(cfg: &Config) {
    let edges = build_edges(cfg.scale, cfg.edge_factor, cfg.seed);
    let n = cfg.vertices();
    let csr = CsrGraph::from_edges_undirected(n, &edges);
    let rl = Relabeling::by_degree_desc(&csr);
    let relabeled = rl.relabel_csr(&csr);
    let th = *cfg.threads.last().expect("thread list non-empty");
    let src = hub_source(&csr);
    let (_, orig) = seconds(|| in_pool(th, || bfs(&csr, src)));
    let (_, reord) = seconds(|| in_pool(th, || bfs(&relabeled, rl.perm[src as usize])));
    let mut t = Table::new(&["layout", "BFS time (s)"]);
    t.row(vec!["original ids".into(), f3(orig)]);
    t.row(vec!["degree-descending ids".into(), f3(reord)]);
    t.print("Extension: vertex reordering");
}

/// Extension: connectivity maintenance under deletions with replacement
/// search.
fn extension_replacement(cfg: &Config) {
    let scale = cfg.scale.min(13); // replacement search BFS is per-deletion
    let edges = build_edges(scale, 4, cfg.seed ^ 12);
    let n = 1usize << scale;
    let csr = CsrGraph::from_edges_undirected(n, &edges);
    let mut forest = LinkCutForest::from_csr(&csr);
    let mut rng = XorShift64::new(cfg.seed);
    let mut live: Vec<_> = edges.clone();
    let mut reconnected = 0usize;
    let mut split = 0usize;
    let trials = 200.min(live.len() / 2);
    let (_, secs) = seconds(|| {
        for _ in 0..trials {
            let i = rng.next_bounded(live.len() as u64) as usize;
            let e = live.swap_remove(i);
            let g2 = CsrGraph::from_edges_undirected(n, &live);
            if forest.cut_with_replacement(&g2, e.u, e.v) {
                reconnected += 1;
            } else {
                split += 1;
            }
        }
    });
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["deletions processed".into(), trials.to_string()]);
    t.row(vec!["stayed connected".into(), reconnected.to_string()]);
    t.row(vec!["component split".into(), split.to_string()]);
    t.row(vec!["total time (s)".into(), f3(secs)]);
    t.print("Extension: tree-edge deletion with replacement search");
}
