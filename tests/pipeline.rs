//! End-to-end integration: R-MAT workload -> parallel ingestion into every
//! representation -> identical graph state -> CSR snapshot -> kernels
//! agree with each other and with oracles.

use snap::prelude::*;
use std::collections::HashSet;

const SCALE: u32 = 10;
const N: usize = 1 << SCALE;

fn live_set<A: DynamicAdjacency>(g: &DynGraph<A>) -> HashSet<(u32, u32)> {
    let mut set = HashSet::new();
    for u in 0..g.num_vertices() as u32 {
        g.for_each_neighbor(u, &mut |e| {
            set.insert((u, e.nbr));
        });
    }
    set
}

fn build<A: DynamicAdjacency>(edges: &[TimedEdge]) -> DynGraph<A> {
    let hints = CapacityHints::new(edges.len() * 2);
    let g: DynGraph<A> = DynGraph::undirected(N, &hints);
    let stream = StreamBuilder::new(edges, 3).construction_shuffled();
    engine::apply_stream(&g, &stream);
    g
}

#[test]
fn all_representations_agree_after_parallel_construction() {
    let edges = Rmat::new(RmatParams::paper(SCALE, 8), 1).edges();
    let arr: DynGraph<DynArr> = build(&edges);
    let tre: DynGraph<TreapAdj> = build(&edges);
    let hyb: DynGraph<HybridAdj> = build(&edges);
    let sa = live_set(&arr);
    let st = live_set(&tre);
    let sh = live_set(&hyb);
    assert_eq!(sa, st, "Dyn-arr vs Treaps live sets differ");
    assert_eq!(sa, sh, "Dyn-arr vs Hybrid live sets differ");
    // Ground truth from the edge list itself.
    let mut want = HashSet::new();
    for e in &edges {
        want.insert((e.u, e.v));
        want.insert((e.v, e.u));
    }
    assert_eq!(sa, want);
}

#[test]
fn csr_snapshots_are_equivalent_across_representations() {
    let edges = Rmat::new(RmatParams::paper(SCALE, 8), 2).edges();
    let arr: DynGraph<DynArr> = build(&edges);
    let hyb: DynGraph<HybridAdj> = build(&edges);
    let ca = arr.to_csr();
    let ch = hyb.to_csr();
    // Dyn-arr keeps duplicate parallel edges; hybrid treap vertices dedup,
    // so entry counts differ but dedup'd neighborhoods must agree.
    assert!(ca.num_entries() >= ch.num_entries());
    for u in 0..N as u32 {
        let mut na: Vec<u32> = ca.neighbors(u).to_vec();
        let mut nh: Vec<u32> = ch.neighbors(u).to_vec();
        na.sort_unstable();
        nh.sort_unstable();
        // Hybrid dedups treap vertices' duplicates; Dyn-arr keeps them.
        na.dedup();
        nh.dedup();
        assert_eq!(na, nh, "neighborhood of {u} differs across representations");
    }
}

#[test]
fn kernels_agree_on_the_same_snapshot() {
    let edges = Rmat::new(RmatParams::paper(SCALE, 8), 3).edges();
    let csr = CsrGraph::from_edges_undirected(N, &edges);
    let labels = connected_components(&csr);
    let forest = LinkCutForest::from_csr(&csr);
    let hub = (0..N as u32).max_by_key(|&u| csr.out_degree(u)).unwrap();
    let traversal = bfs(&csr, hub);
    for v in (0..N as u32).step_by(13) {
        let reach_bfs = traversal.dist[v as usize] != snap::kernels::UNREACHED;
        let reach_cc = labels[v as usize] == labels[hub as usize];
        let reach_lcf = forest.connected(v, hub);
        assert_eq!(reach_bfs, reach_cc, "BFS vs components for {v}");
        assert_eq!(reach_cc, reach_lcf, "components vs forest for {v}");
        // st-connectivity distance must equal BFS distance.
        let st = st_connectivity(&csr, hub, v);
        assert_eq!(st.is_some(), reach_bfs);
        if let Some(d) = st {
            assert_eq!(d, traversal.dist[v as usize]);
        }
    }
}

#[test]
fn induced_subgraph_consistent_between_static_and_dynamic_paths() {
    let edges = Rmat::new(RmatParams::paper(SCALE, 8), 4).edges();
    let w = TimeWindow::open(20, 70);
    // Static path.
    let sub = induced_subgraph_csr(N, &edges, w);
    // Dynamic path: build then restrict in place. Dyn-arr keeps the full
    // multiset of parallel edges, so per-entry timestamp filtering matches
    // the static filter exactly (treap vertices would collapse duplicate
    // edges to their last timestamp, a set-semantics difference).
    let g: DynGraph<DynArr> = build(&edges);
    snap::kernels::subgraph::restrict_in_place(&g, w);
    let dynamic = g.to_csr();
    for u in 0..N as u32 {
        let mut a: Vec<u32> = sub.neighbors(u).to_vec();
        let mut b: Vec<u32> = dynamic.neighbors(u).to_vec();
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        assert_eq!(a, b, "window subgraph differs at vertex {u}");
    }
}

#[test]
fn temporal_bfs_respects_window_on_snapshot_of_dynamic_graph() {
    let edges = Rmat::new(RmatParams::paper(SCALE, 8), 5).edges();
    let g: DynGraph<DynArr> = build(&edges);
    let csr = g.to_csr();
    let w = TimeWindow::open(30, 60);
    let hub = (0..N as u32).max_by_key(|&u| csr.out_degree(u)).unwrap();
    let filtered = temporal_bfs(&csr, hub, |ts| w.contains(ts));
    let full = bfs(&csr, hub);
    // The filtered traversal can never reach more vertices, and both reach
    // the source.
    assert!(filtered.reached() <= full.reached());
    assert!(filtered.reached() >= 1);
    // Every filtered-reached vertex must also be statically reachable.
    for v in 0..N {
        if filtered.dist[v] != snap::kernels::UNREACHED {
            assert_ne!(full.dist[v], snap::kernels::UNREACHED);
            assert!(
                filtered.dist[v] >= full.dist[v],
                "filtering cannot shorten paths"
            );
        }
    }
}

#[test]
fn fixed_dynarr_matches_dynarr_on_insert_only_stream() {
    let edges = Rmat::new(RmatParams::paper(SCALE, 8), 6).edges();
    let stream = StreamBuilder::new(&edges, 8).construction_shuffled();
    // Oracle-sized Dyn-arr-nr.
    let sources = stream.iter().flat_map(|u| [u.edge.u, u.edge.v]);
    let caps = FixedDynArr::capacities_for_inserts(N, sources);
    let nr = DynGraph::from_adjacency(FixedDynArr::with_capacities(&caps), false);
    engine::apply_stream(&nr, &stream);
    let arr: DynGraph<DynArr> = build(&edges);
    assert_eq!(live_set(&nr), live_set(&arr));
    assert_eq!(nr.total_entries(), arr.total_entries());
}
