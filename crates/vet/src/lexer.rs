//! Line-level lexical analysis of Rust source.
//!
//! The build environment has no reachable crates registry, so `syn` is
//! unavailable; instead the scanner runs a small character-state machine
//! that is exact about the only three things the rules need:
//!
//! 1. which bytes are **code** vs **comment** vs **string/char literal**
//!    (so a banned API mentioned in a doc comment never fires, and a
//!    `SAFETY:` inside a string never satisfies a rule),
//! 2. brace depth (so `#[cfg(test)]` / `#[test]` regions can be tracked
//!    without a parse tree), and
//! 3. the comment text itself (so justification markers can be found).
//!
//! Handled: nested `/* */` block comments, `//` line comments, string
//! escapes, raw strings with any `#` arity, byte strings, and the
//! char-literal vs lifetime ambiguity (`'a'` vs `'a`).

/// One analyzed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line's code content: string/char-literal bodies and comments
    /// are blanked with spaces, structural characters are preserved.
    pub code: String,
    /// Concatenated comment text appearing on this line (line and block
    /// comments, including doc comments), without the delimiters.
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]` / `#[test]`
    /// region or the file itself is a test/bench/example file.
    pub in_test: bool,
}

impl Line {
    /// True when the line carries comment text but no code tokens.
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty() && !self.comment.trim().is_empty()
    }

    /// True when the line is only an attribute (`#[...]`), possibly with
    /// a trailing comment.
    pub fn is_attr_only(&self) -> bool {
        let t = self.code.trim();
        t.starts_with("#[") || t.starts_with("#![")
    }

    /// True when the line has neither code nor comment text.
    pub fn is_blank(&self) -> bool {
        self.code.trim().is_empty() && self.comment.trim().is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested block comment with the current nesting depth.
    BlockComment(u32),
    Str,
    /// Raw string terminated by `"` followed by this many `#`.
    RawStr(u32),
    Char,
}

/// Lex a whole source file into analyzed [`Line`]s.
///
/// `whole_file_is_test` marks every line as test context (used for
/// files under `tests/`, `benches/`, and `examples/`).
pub fn lex(source: &str, whole_file_is_test: bool) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut state = State::Code;
    // Stack of brace depths at which a test region opened.
    let mut test_regions: Vec<u32> = Vec::new();
    // Depth recorded when a test attribute was seen, waiting for its `{`.
    let mut pending_test: Option<u32> = None;
    let mut depth: u32 = 0;

    for raw in source.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        // A line belongs to the test region if we are inside one at line
        // start, or a test attribute is still waiting for its body.
        let mut in_test = whole_file_is_test || !test_regions.is_empty() || pending_test.is_some();

        // Attribute-based test detection must arm *before* this line's
        // braces are processed so `#[cfg(test)] mod t {` works on one
        // line. The prescan runs on the raw text, which is safe: an
        // attribute line cannot start inside a string, and if we are
        // mid block-comment the prescan is skipped.
        if state == State::Code && is_test_attr(raw) {
            pending_test = Some(depth);
            in_test = true;
        }

        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    '"' => {
                        // Check for a raw/byte-raw string opener ending here.
                        let opener = raw_opener_hashes(&bytes, i);
                        if let Some(h) = opener {
                            state = State::RawStr(h);
                        } else {
                            state = State::Str;
                        }
                        code.push('"');
                    }
                    '\'' => {
                        // Lifetime vs char literal. `'\...'` and `'x'`
                        // are literals; `'ident` (no closing quote right
                        // after one symbol) is a lifetime.
                        if next == Some('\\') {
                            state = State::Char;
                            code.push('\'');
                        } else if bytes.get(i + 2) == Some(&'\'') && next.is_some() {
                            // 'x' one-char literal: blank the payload.
                            code.push('\'');
                            code.push(' ');
                            code.push('\'');
                            i += 3;
                            continue;
                        } else {
                            // Lifetime marker: keep as code, stay in Code.
                            code.push('\'');
                        }
                    }
                    '{' => {
                        depth += 1;
                        if let Some(d) = pending_test {
                            if depth == d + 1 {
                                test_regions.push(d);
                                pending_test = None;
                                in_test = true;
                            }
                        }
                        code.push('{');
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if test_regions.last() == Some(&depth) {
                            test_regions.pop();
                        }
                        code.push('}');
                    }
                    _ => code.push(c),
                },
                State::LineComment => {
                    comment.push(c);
                }
                State::BlockComment(d) => {
                    if c == '*' && next == Some('/') {
                        if d == 1 {
                            state = State::Code;
                        } else {
                            state = State::BlockComment(d - 1);
                        }
                        i += 2;
                        code.push(' ');
                        code.push(' ');
                        continue;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(d + 1);
                        comment.push(c);
                        comment.push('*');
                        i += 2;
                        continue;
                    }
                    comment.push(c);
                }
                State::Str => match c {
                    '\\' => {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = State::Code;
                        code.push('"');
                    }
                    _ => code.push(' '),
                },
                State::RawStr(h) => {
                    if c == '"' && closes_raw(&bytes, i, h) {
                        state = State::Code;
                        code.push('"');
                        for _ in 0..h {
                            code.push(' ');
                        }
                        i += 1 + h as usize;
                        continue;
                    }
                    code.push(' ');
                }
                State::Char => match c {
                    '\\' => {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    '\'' => {
                        state = State::Code;
                        code.push('\'');
                    }
                    _ => code.push(' '),
                },
            }
            i += 1;
        }

        // Line comments end with the line; strings continue (multi-line
        // string literals) and block comments continue.
        if state == State::LineComment {
            state = State::Code;
        }

        lines.push(Line {
            code,
            comment,
            in_test,
        });
    }
    lines
}

/// Detect `r"`, `r#"`, `br##"`, ... ending at the quote at `bytes[i]`.
/// Returns the number of `#` characters when it is a raw-string opener.
fn raw_opener_hashes(bytes: &[char], quote_at: usize) -> Option<u32> {
    let mut j = quote_at;
    let mut hashes = 0u32;
    while j > 0 && bytes[j - 1] == '#' {
        hashes += 1;
        j -= 1;
    }
    if j == 0 {
        return None;
    }
    let head = bytes[j - 1];
    let is_r = head == 'r';
    let is_br = head == 'r' && j >= 2 && bytes[j - 2] == 'b';
    // Guard against identifiers ending in `r` (e.g. `var"..."` cannot
    // occur, but `hdr#` patterns could): require the char before `r`
    // (or `br`) to be a non-identifier character.
    if is_r {
        let before = if is_br {
            j.checked_sub(3)
        } else {
            j.checked_sub(2)
        };
        let ok = match before {
            None => true,
            Some(k) => {
                let b = bytes[k];
                !(b.is_alphanumeric() || b == '_')
            }
        };
        if ok {
            return Some(hashes);
        }
    }
    // `#"` without an `r` is not a raw string.
    None
}

/// True when the `"` at `bytes[i]` is followed by `h` hash characters,
/// closing a raw string of arity `h`.
fn closes_raw(bytes: &[char], i: usize, h: u32) -> bool {
    (0..h as usize).all(|d| bytes.get(i + 1 + d) == Some(&'#'))
}

/// True when the line's code view carries a test-scoping attribute.
fn is_test_attr(code: &str) -> bool {
    let t = code.trim();
    if !t.starts_with("#[") {
        return false;
    }
    t.contains("cfg(test)")
        || t.contains("cfg(all(test")
        || t.contains("cfg(any(test")
        || t.starts_with("#[test]")
        || t.contains("#[bench]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_split_from_code() {
        let l = lex("let x = 1; // ordering: note", false);
        assert!(l[0].code.contains("let x = 1;"));
        assert!(!l[0].code.contains("ordering"));
        assert!(l[0].comment.contains("ordering: note"));
    }

    #[test]
    fn string_bodies_are_blanked() {
        let l = lex("let s = \"unsafe // SAFETY: fake\";", false);
        assert!(!l[0].code.contains("unsafe"));
        assert!(l[0].comment.is_empty());
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"Ordering::SeqCst \"quoted\" body\"#; let y = 2;";
        let l = lex(src, false);
        assert!(!l[0].code.contains("Ordering"));
        assert!(l[0].code.contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let z = 3;";
        let l = lex(src, false);
        assert!(l[0].code.contains("let z = 3;"));
        assert!(l[0].comment.contains("inner"));
    }

    #[test]
    fn multiline_block_comment_spans() {
        let src = "/* SAFETY: spans\nlines */ unsafe {}";
        let l = lex(src, false);
        assert!(l[0].comment.contains("SAFETY"));
        assert!(l[1].code.contains("unsafe"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'y';";
        let l = lex(src, false);
        assert!(l[0].code.contains("fn f<'a>"));
        // the 'y' payload is blanked but the quotes survive
        assert!(l[0].code.contains("' '"));
    }

    #[test]
    fn escaped_quote_char_literal() {
        let src = "let q = '\\''; let post = 7;";
        let l = lex(src, false);
        assert!(l[0].code.contains("let post = 7;"));
    }

    #[test]
    fn cfg_test_region_tracking() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib2() {}\n";
        let l = lex(src, false);
        assert!(!l[0].in_test);
        assert!(l[1].in_test); // the attribute line itself
        assert!(l[2].in_test);
        assert!(l[3].in_test);
        assert!(l[4].in_test);
        assert!(!l[5].in_test);
    }

    #[test]
    fn test_fn_region_tracking() {
        let src = "#[test]\nfn t() {\n    body();\n}\nfn lib() {}\n";
        let l = lex(src, false);
        assert!(l[2].in_test);
        assert!(!l[4].in_test);
    }
}
