//! Parallel single-source shortest paths: Δ-stepping with parallel
//! bucket relaxation.
//!
//! Same bucket structure as the serial kernel (`snap_kernels::sssp`):
//! vertices bucketed by `dist / Δ`, each bucket settled to a fixed point
//! over its light edges (weight <= Δ) before one heavy-edge pass. The
//! parallel part is the relaxation: each bucket's frontier fans out
//! through [`crate::frontier::par_edge_map`] — edge-budgeted chunks over
//! worker threads — and every edge applies a CAS-min directly to the
//! shared atomic distance array. Workers record which vertices they
//! improved in per-worker buffers; the (cheap, frontier-sized) bucket
//! insertion happens sequentially after the join. A vertex improved
//! twice in one round is pushed twice — a stale queued entry re-relaxes
//! harmlessly, exactly as in the serial kernel.
//!
//! Edge weight is `max(timestamp, 1)`, matching the serial kernel, so
//! results are comparable bit-for-bit (both are exact).

use crate::frontier::par_edge_map;
use crate::ParConfig;
use snap_core::GraphView;
use snap_kernels::sssp::INF;
use std::sync::atomic::{AtomicU64, Ordering};

/// Parallel Δ-stepping from `src` with the default [`ParConfig`].
///
/// # Examples
///
/// ```
/// use snap_core::CsrGraph;
/// use snap_par::par_sssp;
/// use snap_rmat::TimedEdge;
///
/// // Edge weight is max(timestamp, 1), matching the serial kernel.
/// let edges = vec![TimedEdge::new(0, 1, 2), TimedEdge::new(1, 2, 3)];
/// let g = CsrGraph::from_edges_undirected(3, &edges);
/// assert_eq!(par_sssp(&g, 0, 4), vec![0, 2, 5]);
/// ```
pub fn par_sssp<V: GraphView>(view: &V, src: u32, delta: u64) -> Vec<u64> {
    par_sssp_with(view, src, delta, &ParConfig::default())
}

/// Parallel Δ-stepping from `src` under an explicit configuration.
/// Falls back to the serial Dijkstra oracle below the size threshold.
pub fn par_sssp_with<V: GraphView>(view: &V, src: u32, delta: u64, cfg: &ParConfig) -> Vec<u64> {
    let n = view.num_vertices();
    assert!((src as usize) < n, "source out of range");
    if n + view.num_entries() <= cfg.serial_threshold {
        return snap_kernels::dijkstra(view, src);
    }
    let delta = delta.max(1);
    let threads = cfg.worker_count();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[src as usize].store(0, Ordering::Relaxed);
    let mut sinks: Vec<Vec<(u32, u64)>> = (0..threads).map(|_| Vec::new()).collect();
    let mut buckets: Vec<Vec<u32>> = vec![vec![src]];
    let mut current = 0usize;
    while current < buckets.len() {
        // Settle the current bucket over light edges to a fixed point.
        let mut deleted: Vec<u32> = Vec::new();
        loop {
            let frontier: Vec<u32> = std::mem::take(&mut buckets[current]);
            if frontier.is_empty() {
                break;
            }
            deleted.extend_from_slice(&frontier);
            relax_frontier(view, &frontier, &dist, cfg, |w| w <= delta, &mut sinks);
            enqueue_improved(&mut sinks, delta, &mut buckets, current);
        }
        // One heavy-edge pass over everything settled in this bucket.
        // `deleted` holds one entry per *settlement*, and a vertex
        // improved across inner rounds re-enters the frontier each time —
        // without dedup its heavy edges would be re-relaxed once per
        // re-settlement (harmless but pure waste, and the frontier handed
        // to the chunker is larger than the vertex set it covers).
        deleted.sort_unstable();
        deleted.dedup();
        relax_frontier(view, &deleted, &dist, cfg, |w| w > delta, &mut sinks);
        enqueue_improved(&mut sinks, delta, &mut buckets, current);
        current += 1;
    }
    dist.into_iter().map(|d| d.into_inner()).collect()
}

#[inline]
fn weight(ts: u32) -> u64 {
    (ts as u64).max(1)
}

/// Parallel chunked relaxation of every qualifying edge out of
/// `frontier`: CAS-min on the shared distances, improvements recorded in
/// per-worker sinks.
fn relax_frontier<V: GraphView>(
    view: &V,
    frontier: &[u32],
    dist: &[AtomicU64],
    cfg: &ParConfig,
    qualifies: impl Fn(u64) -> bool + Sync,
    sinks: &mut [Vec<(u32, u64)>],
) {
    par_edge_map(
        view,
        frontier,
        cfg.chunk_edges,
        |u, v, ts, sink: &mut Vec<(u32, u64)>| {
            let w = weight(ts);
            if !qualifies(w) {
                return;
            }
            let du = dist[u as usize].load(Ordering::Relaxed);
            let nd = du.saturating_add(w);
            let mut cur = dist[v as usize].load(Ordering::Relaxed);
            while nd < cur {
                match dist[v as usize].compare_exchange_weak(
                    cur,
                    nd,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        sink.push((v, nd));
                        return;
                    }
                    Err(now) => cur = now,
                }
            }
        },
        sinks,
    );
}

/// Drains the worker sinks into their target buckets (never before
/// `floor`: edge weights are positive).
fn enqueue_improved(
    sinks: &mut [Vec<(u32, u64)>],
    delta: u64,
    buckets: &mut Vec<Vec<u32>>,
    floor: usize,
) {
    for sink in sinks {
        for &(v, nd) in sink.iter() {
            let b = ((nd / delta) as usize).max(floor);
            if b >= buckets.len() {
                buckets.resize(b + 1, Vec::new());
            }
            buckets[b].push(v);
        }
        sink.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_core::CsrGraph;
    use snap_kernels::{delta_stepping, dijkstra};
    use snap_rmat::{Rmat, RmatParams, TimedEdge};

    fn force() -> ParConfig {
        ParConfig::default()
            .with_serial_threshold(0)
            .with_threads(4)
    }

    #[test]
    fn weighted_path_is_exact() {
        let edges = vec![
            TimedEdge::new(0, 1, 2),
            TimedEdge::new(1, 2, 3),
            TimedEdge::new(2, 3, 4),
        ];
        let g = CsrGraph::from_edges_undirected(4, &edges);
        for delta in [1u64, 3, 100] {
            assert_eq!(par_sssp_with(&g, 0, delta, &force()), vec![0, 2, 5, 9]);
        }
    }

    #[test]
    fn matches_dijkstra_and_serial_delta_stepping_on_rmat() {
        let rm = Rmat::new(RmatParams::paper(10, 8).with_max_timestamp(100), 5);
        let g = CsrGraph::from_edges_undirected(1 << 10, &rm.edges());
        let oracle = dijkstra(&g, 0);
        for delta in [1u64, 8, 32, 1 << 20] {
            let par = par_sssp_with(&g, 0, delta, &force());
            assert_eq!(par, oracle, "delta {delta} diverged from Dijkstra");
            assert_eq!(par, delta_stepping(&g, 0, delta));
        }
    }

    #[test]
    fn directed_weighted_graph_is_exact() {
        let rm = Rmat::new(RmatParams::paper(10, 8).with_max_timestamp(50), 11);
        let g = CsrGraph::from_edges_directed(1 << 10, &rm.edges());
        assert_eq!(par_sssp_with(&g, 0, 16, &force()), dijkstra(&g, 0));
    }

    #[test]
    fn unreachable_vertices_stay_inf() {
        let g = CsrGraph::from_edges_undirected(4, &[TimedEdge::new(0, 1, 1)]);
        let d = par_sssp_with(&g, 0, 2, &force());
        assert_eq!(d[2], INF);
        assert_eq!(d[3], INF);
    }

    #[test]
    fn small_graph_falls_back_to_dijkstra() {
        let g = CsrGraph::from_edges_undirected(3, &[TimedEdge::new(0, 1, 5)]);
        assert_eq!(par_sssp(&g, 0, 4), dijkstra(&g, 0));
    }

    /// Counts [`GraphView::for_each_edge`] invocations, so a test can pin
    /// down exactly how many frontier entries each pass scanned.
    struct CountingView<'a> {
        inner: &'a CsrGraph,
        visits: std::sync::atomic::AtomicUsize,
    }

    impl GraphView for CountingView<'_> {
        fn num_vertices(&self) -> usize {
            self.inner.num_vertices()
        }
        fn is_directed(&self) -> bool {
            self.inner.is_directed()
        }
        fn degree(&self, u: u32) -> usize {
            self.inner.out_degree(u)
        }
        fn for_each_edge<F: FnMut(u32, u32)>(&self, u: u32, f: F) {
            self.visits.fetch_add(1, Ordering::Relaxed);
            GraphView::for_each_edge(self.inner, u, f)
        }
    }

    #[test]
    fn heavy_pass_dedups_multi_settled_vertices() {
        // Vertex 2 settles twice inside bucket 0: first at 3 via the
        // direct (0,2) edge, then improved to 2 via 0-1-2. Before the
        // dedup fix the heavy pass scanned it once per settlement.
        let edges = vec![
            TimedEdge::new(0, 1, 1),
            TimedEdge::new(1, 2, 1),
            TimedEdge::new(0, 2, 3),
            TimedEdge::new(2, 3, 50), // the heavy edge duplicates would re-relax
        ];
        let csr = CsrGraph::from_edges_undirected(4, &edges);
        let view = CountingView {
            inner: &csr,
            visits: std::sync::atomic::AtomicUsize::new(0),
        };
        let cfg = ParConfig::default()
            .with_serial_threshold(0)
            .with_threads(1);
        let d = par_sssp_with(&view, 0, 10, &cfg);
        assert_eq!(d, dijkstra(&csr, 0));
        assert_eq!(d, vec![0, 1, 2, 52]);
        // Hand-traced frontier scans with a deduped heavy pass:
        // light passes [0], [1,2], [2] = 4; heavy pass over the deduped
        // {0,1,2} = 3; bucket 5 light [3] + heavy [3] = 2. A duplicated
        // heavy frontier would make this 10.
        assert_eq!(view.visits.into_inner(), 9, "heavy pass must be deduped");
    }

    #[test]
    fn multi_settlement_stream_matches_dijkstra() {
        // A ladder of shortcut edges: every rung offers a long direct
        // light edge first and a shorter multi-hop path second, forcing
        // re-settlement churn inside each bucket at several deltas.
        let mut edges = Vec::new();
        for i in 0..64u32 {
            edges.push(TimedEdge::new(i, i + 1, 1));
            edges.push(TimedEdge::new(i, (i + 2).min(65), 7));
        }
        let g = CsrGraph::from_edges_undirected(66, &edges);
        let oracle = dijkstra(&g, 0);
        for delta in [2u64, 8, 16, 1 << 20] {
            for threads in [1usize, 2, 4] {
                let cfg = ParConfig::default()
                    .with_serial_threshold(0)
                    .with_threads(threads);
                assert_eq!(par_sssp_with(&g, 0, delta, &cfg), oracle);
            }
        }
    }
}
