//! Parallel connected components: Shiloach–Vishkin label propagation
//! with pointer jumping, executed over real worker threads.
//!
//! The algorithm matches the serial kernel in `snap_kernels::cc` —
//! alternate *grafting* (hook a vertex's label chain under any smaller
//! label seen across an edge) and *shortcutting* (pointer-jump every
//! label to its chain's root) until a fixed point. Labels only ever
//! decrease and every intermediate label names a vertex inside the same
//! component, so the fixed point is the component's minimum vertex id:
//! the output is canonical and comparable with the serial kernel
//! bit-for-bit, at any thread count.
//!
//! Work distribution: the vertex id space is cut into
//! [`GraphView::vertex_chunks`] ranges and both phases run through
//! [`crate::frontier::par_for_ranges_stats`] — per-worker range deals
//! with stealing, so a range hiding a power-law hub delays one chunk,
//! not one thread's entire static share. The sweep width is
//! volume-gated by [`ParConfig::fork_width`] over the whole view
//! (`n + m`): on an effective width of 1 every sweep runs inline and the
//! fork/join barrier disappears. The input view must be symmetric
//! (undirected), as for the serial kernel.

use crate::frontier::{self, par_for_ranges_stats, sweep_grain, ParStats};
use crate::ParConfig;
use snap_core::connectivity::{restricted_component_labels, ConnectivityIndex};
use snap_core::GraphView;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Parallel connected components with the default [`ParConfig`].
/// Returns the canonical min-id label per vertex.
///
/// # Examples
///
/// ```
/// use snap_core::CsrGraph;
/// use snap_par::par_cc;
/// use snap_rmat::TimedEdge;
///
/// let edges = vec![TimedEdge::new(0, 1, 1), TimedEdge::new(2, 3, 1)];
/// let g = CsrGraph::from_edges_undirected(4, &edges);
/// // Canonical min-id labels, identical to the serial kernel.
/// assert_eq!(par_cc(&g), vec![0, 0, 2, 2]);
/// ```
pub fn par_cc<V: GraphView>(view: &V) -> Vec<u32> {
    par_cc_with(view, &ParConfig::default())
}

/// Parallel connected components under an explicit configuration.
pub fn par_cc_with<V: GraphView>(view: &V, cfg: &ParConfig) -> Vec<u32> {
    par_cc_stats(view, cfg).0
}

/// Like [`par_cc_with`], also returning the runtime's scheduling
/// counters (every graft and shortcut sweep counts as one level).
pub fn par_cc_stats<V: GraphView>(view: &V, cfg: &ParConfig) -> (Vec<u32>, ParStats) {
    let n = view.num_vertices();
    let m = view.num_entries();
    if n + m <= cfg.serial_threshold {
        crate::metrics::publish(&ParStats::default());
        return (
            snap_kernels::connected_components(view),
            ParStats::default(),
        );
    }
    // Every sweep scans the whole view, so the level volume *is* the
    // view: the gate decides once whether this host forks at all.
    let work = n + m;
    let width = cfg.fork_width(work, work);
    let mut stats = ParStats::default();
    let ranges: Vec<Range<u32>> = view.vertex_chunks(sweep_grain(n, width)).collect();
    let label: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let changed = AtomicBool::new(true);
    // ordering: Relaxed — read between sweeps; each sweep's join
    // barrier publishes the stores (invariant 8) and the fixed point
    // re-checks.
    while changed.swap(false, Ordering::Relaxed) {
        // Graft: relaxed racy hooking is convergent — the outer loop
        // re-checks until a fixed point and labels only decrease.
        par_for_ranges_stats(
            &ranges,
            width,
            |r| {
                for u in r {
                    // ordering: Relaxed — labels are monotone minima;
                    // stale reads only delay the fixed point, as in
                    // the kernels::cc sweep (invariant 8).
                    let lu = label[u as usize].load(Ordering::Relaxed);
                    view.for_each_edge(u, |v, _| {
                        // ordering: Relaxed — as above.
                        let lv = label[v as usize].load(Ordering::Relaxed);
                        if lv < lu {
                            if try_lower(&label, u, lv) {
                                // ordering: Relaxed — progress flag
                                // read after the sweep join.
                                changed.store(true, Ordering::Relaxed);
                            }
                        } else if lu < lv && try_lower(&label, v, lu) {
                            // ordering: Relaxed — as above.
                            changed.store(true, Ordering::Relaxed);
                        }
                    });
                }
            },
            &mut stats,
        );
        stats.edges_scanned += m as u64;
        // Shortcut: pointer-jump every label chain to its root.
        par_for_ranges_stats(
            &ranges,
            width,
            |r| {
                for u in r {
                    // ordering: Relaxed (all) — pointer jumping over
                    // monotone labels; racy jumps land on valid roots
                    // and the outer fixed point absorbs staleness.
                    let mut l = label[u as usize].load(Ordering::Relaxed);
                    loop {
                        // ordering: Relaxed — see above.
                        let ll = label[l as usize].load(Ordering::Relaxed);
                        if ll == l {
                            break;
                        }
                        l = ll;
                    }
                    // ordering: Relaxed — see above.
                    label[u as usize].store(l, Ordering::Relaxed);
                }
            },
            &mut stats,
        );
    }
    crate::metrics::publish(&stats);
    (label.into_iter().map(|l| l.into_inner()).collect(), stats)
}

/// Parallel connected components **restricted to a vertex subset**:
/// canonical minimum-id labels for `verts` (ascending) over the live
/// edges of `view`, ignoring edges that leave the subset. Same
/// grafting-and-pointer-jumping scheme as [`par_cc_with`], but label
/// state is
/// position-indexed over `verts`, so the cost scales with the subset —
/// this is the relabeler the dynamic-connectivity serving path uses to
/// repair one deletion-dirtied component without touching the rest of
/// the graph (see [`par_repair`]). Falls back to the serial restricted
/// kernel below the size threshold.
pub fn par_cc_restricted<V: GraphView>(view: &V, verts: &[u32], cfg: &ParConfig) -> Vec<u32> {
    debug_assert!(verts.windows(2).all(|w| w[0] < w[1]), "verts must ascend");
    let k = verts.len();
    // The repair volume is the subset plus its incident edges — a small
    // dirtied component should never pay a fork/join barrier.
    let vol = k + verts.iter().map(|&u| view.degree(u)).sum::<usize>();
    let width = frontier::fork_width(vol, cfg.level_gate(vol), cfg.worker_count());
    if k <= cfg.serial_threshold || width <= 1 {
        return restricted_component_labels(view, verts);
    }
    let ranges: Vec<Range<u32>> = chunk_positions(k, sweep_grain(k, width));
    // label[i] is a *position* into verts; positions are id-ordered, so
    // the min-position fixed point is the min-id label.
    let label: Vec<AtomicU32> = (0..k as u32).map(AtomicU32::new).collect();
    let changed = AtomicBool::new(true);
    // ordering: Relaxed — same sweep-join discipline as `par_cc` above
    // (invariant 8); every site in this restricted pass mirrors the
    // full-graph pass.
    while changed.swap(false, Ordering::Relaxed) {
        frontier::par_for_ranges(&ranges, width, |r| {
            for i in r {
                // ordering: Relaxed — monotone label, as in par_cc.
                let li = label[i as usize].load(Ordering::Relaxed);
                view.for_each_edge(verts[i as usize], |w, _| {
                    let Ok(j) = verts.binary_search(&w) else {
                        return; // edge leaves the subset
                    };
                    // ordering: Relaxed — as above.
                    let lj = label[j].load(Ordering::Relaxed);
                    if lj < li {
                        if try_lower(&label, i, lj) {
                            // ordering: Relaxed — progress flag.
                            changed.store(true, Ordering::Relaxed);
                        }
                    } else if li < lj && try_lower(&label, j as u32, li) {
                        // ordering: Relaxed — progress flag.
                        changed.store(true, Ordering::Relaxed);
                    }
                });
            }
        });
        frontier::par_for_ranges(&ranges, width, |r| {
            for i in r {
                // ordering: Relaxed (all) — pointer jumping, as in
                // par_cc's shortcut sweep.
                let mut l = label[i as usize].load(Ordering::Relaxed);
                loop {
                    // ordering: Relaxed — see above.
                    let ll = label[l as usize].load(Ordering::Relaxed);
                    if ll == l {
                        break;
                    }
                    l = ll;
                }
                // ordering: Relaxed — see above.
                label[i as usize].store(l, Ordering::Relaxed);
            }
        });
    }
    label
        .into_iter()
        .map(|l| verts[l.into_inner() as usize])
        .collect()
}

/// Repairs the deletion-dirtied component of `u` in a
/// [`ConnectivityIndex`] using [`par_cc_restricted`] as the relabeler —
/// the parallel counterpart of [`ConnectivityIndex::repair`]. Returns
/// the post-repair root of `u`. A no-op (beyond two finds) when `u`'s
/// component is clean.
pub fn par_repair<V: GraphView>(
    index: &ConnectivityIndex,
    view: &V,
    u: u32,
    cfg: &ParConfig,
) -> u32 {
    if !index.is_component_dirty(u) {
        return index.find(u);
    }
    index.repair_with(view, u, |v, verts| par_cc_restricted(v, verts, cfg))
}

/// Contiguous position ranges `0..k` of at most `grain` each.
pub(crate) fn chunk_positions(k: usize, grain: usize) -> Vec<Range<u32>> {
    let grain = grain.max(1);
    (0..k)
        .step_by(grain)
        .map(|lo| lo as u32..((lo + grain).min(k)) as u32)
        .collect()
}

/// CAS-lowers `x`'s label to `to` if smaller; true if changed.
pub(crate) fn try_lower(label: &[AtomicU32], x: u32, to: u32) -> bool {
    // ordering: Relaxed (load and CAS) — the CAS only lowers the
    // monotone label; sweep joins publish results (invariant 8).
    let mut cur = label[x as usize].load(Ordering::Relaxed);
    while to < cur {
        // ordering: Relaxed — covered by the note above.
        match label[x as usize].compare_exchange_weak(cur, to, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_core::CsrGraph;
    use snap_kernels::cc::union_find_components;
    use snap_kernels::{component_count, connected_components};
    use snap_rmat::{Rmat, RmatParams, TimedEdge};

    // Gate 0 keeps the forked path exercised even on single-core hosts,
    // where the Auto grain would (correctly) run everything inline.
    fn force() -> ParConfig {
        ParConfig::default()
            .with_serial_threshold(0)
            .with_threads(4)
            .with_level_grain(crate::Grain::Edges(0))
    }

    #[test]
    fn matches_serial_kernel_and_union_find_on_rmat() {
        let rm = Rmat::new(RmatParams::paper(11, 4), 17);
        let edges = rm.edges();
        let g = CsrGraph::from_edges_undirected(1 << 11, &edges);
        let par = par_cc_with(&g, &force());
        assert_eq!(par, connected_components(&g));
        assert_eq!(
            par,
            union_find_components(1 << 11, edges.iter().map(|e| (e.u, e.v)))
        );
    }

    #[test]
    fn long_path_converges_to_min_label() {
        let edges: Vec<TimedEdge> = (0..1999).map(|i| TimedEdge::new(i, i + 1, 1)).collect();
        let g = CsrGraph::from_edges_undirected(2000, &edges);
        let labels = par_cc_with(&g, &force());
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn components_and_isolates() {
        let edges = vec![
            TimedEdge::new(0, 1, 1),
            TimedEdge::new(1, 2, 1),
            TimedEdge::new(5, 6, 1),
        ];
        let g = CsrGraph::from_edges_undirected(8, &edges);
        let labels = par_cc_with(&g, &force());
        assert_eq!(labels, vec![0, 0, 0, 3, 4, 5, 5, 7]);
        assert_eq!(component_count(&labels), 5);
    }

    #[test]
    fn small_graph_falls_back_to_serial() {
        let g = CsrGraph::from_edges_undirected(4, &[TimedEdge::new(1, 2, 1)]);
        assert_eq!(par_cc(&g), connected_components(&g));
    }

    #[test]
    fn stats_count_sweeps_and_edges() {
        let edges: Vec<TimedEdge> = (0..1999).map(|i| TimedEdge::new(i, i + 1, 1)).collect();
        let g = CsrGraph::from_edges_undirected(2000, &edges);
        let (labels, stats) = par_cc_stats(&g, &force());
        assert!(labels.iter().all(|&l| l == 0));
        // Each round is one graft + one shortcut sweep, and each graft
        // scans every directed entry once.
        assert!(stats.levels() >= 2 && stats.levels() % 2 == 0);
        assert_eq!(stats.edges_scanned, (stats.levels() / 2) * 2 * 1999);
        // Auto grain at one pinned worker: every sweep stays inline.
        let auto = ParConfig::default()
            .with_serial_threshold(0)
            .with_threads(1);
        let (l2, s2) = par_cc_stats(&g, &auto);
        assert_eq!(l2, labels);
        assert_eq!(s2.forked_levels, 0);
        assert_eq!(s2.chunks_built, 0);
    }

    #[test]
    fn restricted_matches_serial_restricted_on_rmat() {
        use snap_core::connectivity::restricted_component_labels;
        let rm = Rmat::new(RmatParams::paper(11, 4), 23);
        let g = CsrGraph::from_edges_undirected(1 << 11, &rm.edges());
        // Restrict to every third vertex: edges leaving the subset must
        // be ignored identically by both kernels.
        let verts: Vec<u32> = (0..1u32 << 11).step_by(3).collect();
        let par = par_cc_restricted(&g, &verts, &force());
        let serial = restricted_component_labels(&g, &verts);
        assert_eq!(par, serial);
        // Full vertex set: restricted == unrestricted.
        let all: Vec<u32> = (0..1u32 << 11).collect();
        assert_eq!(
            par_cc_restricted(&g, &all, &force()),
            par_cc_with(&g, &force())
        );
    }

    #[test]
    fn par_repair_fixes_a_deletion_split() {
        use snap_core::adjacency::CapacityHints;
        use snap_core::{ConnectivityIndex, DynGraph, HybridAdj};
        let n = 4096usize;
        let g: DynGraph<HybridAdj> = DynGraph::undirected(n, &CapacityHints::new(2 * n));
        for i in 0..n as u32 - 1 {
            g.insert_edge(TimedEdge::new(i, i + 1, 1));
        }
        let idx = ConnectivityIndex::from_view(&g);
        g.delete_edge(2000, 2001);
        idx.note_delete(2000, 2001);
        let root = par_repair(&idx, &g, 3000, &force());
        assert_eq!(root, 2001, "upper half relabels to its min id");
        assert_eq!(idx.repair_count(), 1);
        assert!(!idx.same_component(&g, 0, 4095));
        assert!(idx.same_component(&g, 2001, 4095));
        assert_eq!(idx.repair_count(), 1, "queries after repair are free");
        // Clean component: par_repair is a no-op find.
        assert_eq!(par_repair(&idx, &g, 0, &force()), 0);
        assert_eq!(idx.repair_count(), 1);
        // The repaired labels are canonical: oracle agreement.
        let surviving: Vec<(u32, u32)> = (0..n as u32 - 1)
            .filter(|&i| i != 2000)
            .map(|i| (i, i + 1))
            .collect();
        assert_eq!(
            idx.labels(&g),
            union_find_components(n, surviving.into_iter())
        );
    }
}
