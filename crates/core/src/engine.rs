//! Parallel update-application strategies (Sections 2.1.1–2.1.3).
//!
//! The representation decides *where* an update lands; the engine decides
//! *how* a batch of updates is driven across threads:
//!
//! - [`apply_stream`] — the default: a parallel iterator over the stream,
//!   every thread applying updates directly (per-vertex synchronization
//!   inside the representation resolves conflicts). This is what the
//!   `Dyn-arr` / `Treaps` / `Hybrid` MUPS figures measure.
//! - [`apply_vpart`] — `Vpart`: the vertex space is range-partitioned over
//!   workers; **every worker scans the whole stream** and applies only the
//!   orientations whose source vertex it owns. Zero cross-thread conflicts,
//!   at the price of `threads x stream` reads — the trade-off Figure 3
//!   quantifies.
//! - [`apply_epart`] — `Epart`: updates touching discovered-hot vertices
//!   are diverted to per-worker private buffers and merged in a second
//!   phase, avoiding the hot-vertex contention of the direct path at the
//!   cost of buffer space and a merge step.
//! - [`apply_batched`] — semi-sort the stream by source vertex and apply
//!   each group as a unit. [`semi_sort_bound`] measures just the sort,
//!   the paper's upper bound on any batched scheme's MUPS.

use crate::adjacency::{AdjEntry, DynamicAdjacency};
use crate::csr::CsrGraph;
use crate::graph::DynGraph;
use parking_lot::Mutex;
use rayon::prelude::*;
use snap_rmat::{TimedEdge, Update, UpdateKind};
use snap_util::partition_ranges;
use snap_util::sort::semi_sort_by_key;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Applies every update via a parallel iterator (the streaming default).
pub fn apply_stream<A: DynamicAdjacency>(g: &DynGraph<A>, updates: &[Update]) {
    updates.par_iter().for_each(|u| {
        g.apply(u);
    });
}

/// [`apply_stream`] with wall-clock timing.
pub fn apply_stream_timed<A: DynamicAdjacency>(g: &DynGraph<A>, updates: &[Update]) -> Duration {
    let (_, d) = snap_util::timer::time(|| apply_stream(g, updates));
    d
}

/// One directed half-update: `src`'s adjacency gains/loses `entry`.
#[derive(Clone, Copy)]
struct HalfUpdate {
    src: u32,
    entry: AdjEntry,
    kind: UpdateKind,
}

/// Expands a stream into directed half-updates (two per update for
/// undirected graphs), so that partitioned strategies can assign each half
/// to the worker owning its source vertex.
fn expand_half_updates(updates: &[Update], directed: bool) -> Vec<HalfUpdate> {
    let mut out = Vec::with_capacity(if directed {
        updates.len()
    } else {
        updates.len() * 2
    });
    for u in updates {
        let e = u.edge;
        out.push(HalfUpdate {
            src: e.u,
            entry: AdjEntry::new(e.v, e.timestamp),
            kind: u.kind,
        });
        if !directed && e.u != e.v {
            out.push(HalfUpdate {
                src: e.v,
                entry: AdjEntry::new(e.u, e.timestamp),
                kind: u.kind,
            });
        }
    }
    out
}

fn apply_half<A: DynamicAdjacency>(adj: &A, h: &HalfUpdate) {
    match h.kind {
        UpdateKind::Insert => {
            adj.insert(h.src, h.entry);
        }
        UpdateKind::Delete => {
            adj.delete(h.src, h.entry.nbr);
        }
    }
}

/// `Vpart`: vertices are range-partitioned over `workers`; every worker
/// reads the entire stream and applies the half-updates it owns.
pub fn apply_vpart<A: DynamicAdjacency>(g: &DynGraph<A>, updates: &[Update], workers: usize) {
    let n = g.num_vertices();
    let halves = expand_half_updates(updates, g.is_directed());
    let ranges = partition_ranges(n, workers.max(1));
    let adj = g.adjacency();
    rayon::scope(|s| {
        for r in ranges {
            let halves = &halves;
            s.spawn(move |_| {
                for h in halves {
                    if r.contains(&(h.src as usize)) {
                        apply_half(adj, h);
                    }
                }
            });
        }
    });
}

/// `Epart` configuration: a vertex is "hot" if the current batch contains
/// at least this many half-updates for it.
pub const EPART_HOT_THRESHOLD: usize = 256;

/// `Epart`: cold half-updates apply directly; hot-vertex half-updates are
/// buffered per worker chunk and merged per hot vertex in a second phase.
pub fn apply_epart<A: DynamicAdjacency>(g: &DynGraph<A>, updates: &[Update], workers: usize) {
    let n = g.num_vertices();
    let halves = expand_half_updates(updates, g.is_directed());
    // Discover hot vertices from the batch itself.
    let mut counts = vec![0u32; n];
    for h in &halves {
        counts[h.src as usize] += 1;
    }
    let hot: Vec<bool> = counts
        .iter()
        .map(|&c| c as usize >= EPART_HOT_THRESHOLD)
        .collect();
    let adj = g.adjacency();
    // Phase 1: apply cold directly; buffer hot per chunk.
    let chunk = halves.len().div_ceil(workers.max(1)).max(1);
    let buffers: Vec<Vec<HalfUpdate>> = halves
        .par_chunks(chunk)
        .map(|c| {
            let mut buf = Vec::new();
            for h in c {
                if hot[h.src as usize] {
                    buf.push(*h);
                } else {
                    apply_half(adj, h);
                }
            }
            buf
        })
        .collect();
    // Phase 2: merge — flatten, group by vertex, apply groups in parallel.
    let mut hot_halves: Vec<HalfUpdate> = buffers.into_iter().flatten().collect();
    let key_bits = (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1);
    semi_sort_by_key(&mut hot_halves, key_bits, |h| h.src);
    apply_grouped(adj, &hot_halves);
}

/// Applies semi-sorted half-updates group-by-group in parallel.
fn apply_grouped<A: DynamicAdjacency>(adj: &A, sorted: &[HalfUpdate]) {
    // Find group boundaries, then parallelize over groups: each vertex's
    // updates apply on one worker, in stream order.
    let mut starts = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        starts.push(i);
        let src = sorted[i].src;
        while i < sorted.len() && sorted[i].src == src {
            i += 1;
        }
    }
    starts.push(sorted.len());
    starts.par_windows(2).for_each(|w| {
        for h in &sorted[w[0]..w[1]] {
            apply_half(adj, h);
        }
    });
}

/// Batched processing: semi-sort the stream by source vertex, then apply
/// each vertex's group as a unit.
pub fn apply_batched<A: DynamicAdjacency>(g: &DynGraph<A>, updates: &[Update]) {
    let mut halves = expand_half_updates(updates, g.is_directed());
    let n = g.num_vertices();
    let key_bits = (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1);
    semi_sort_by_key(&mut halves, key_bits, |h| h.src);
    apply_grouped(g.adjacency(), &halves);
}

/// Measures only the semi-sort of the expanded stream — the lower bound on
/// batched processing time (Figure 3's "upper bound on batched MUPS").
pub fn semi_sort_bound(updates: &[Update], n: usize, directed: bool) -> Duration {
    let mut halves = expand_half_updates(updates, directed);
    let key_bits = (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1);
    let (_, d) = snap_util::timer::time(|| {
        semi_sort_by_key(&mut halves, key_bits, |h| h.src);
        std::hint::black_box(&halves);
    });
    d
}

/// Epoch-tagged snapshot cache over a dynamic graph.
///
/// The paper's kernels run on CSR snapshots; rebuilding one costs
/// O(n + m). A serving workload interleaves update batches with *bursts*
/// of queries, so paying that rebuild per query (or even per batch when
/// no query arrives) is pure waste. `SnapshotManager` makes the rebuild
/// lazy and amortized:
///
/// - every mutation (single update or batch) bumps a monotone *epoch*;
/// - [`SnapshotManager::snapshot`] returns a cached [`Arc<CsrGraph>`]
///   and rebuilds only when the epoch moved since the cached build —
///   a burst of traversal-heavy queries between batches pays for at
///   most one rebuild;
/// - cheap queries skip CSR entirely by reading the
///   [live view](crate::view::GraphView) via [`SnapshotManager::live`].
///
/// # Consistency
///
/// Mutations take `&self` and are thread-safe, like the underlying
/// representations. `snapshot()` follows the paper's bulk-synchronous
/// discipline: call it between batches, not concurrently with them (a
/// racing writer can make the degree pass and the copy pass of the CSR
/// builder disagree, which the builder detects and panics on).
pub struct SnapshotManager<A: DynamicAdjacency> {
    graph: DynGraph<A>,
    /// Monotone mutation counter; `snapshot` compares it to the cached
    /// build's epoch to decide whether a rebuild is due.
    epoch: AtomicU64,
    cache: Mutex<SnapshotCache>,
    rebuilds: AtomicUsize,
}

struct SnapshotCache {
    epoch: u64,
    csr: Option<Arc<CsrGraph>>,
}

impl<A: DynamicAdjacency> SnapshotManager<A> {
    /// Wraps a dynamic graph. The first [`SnapshotManager::snapshot`]
    /// call builds the initial CSR.
    pub fn new(graph: DynGraph<A>) -> Self {
        Self {
            graph,
            epoch: AtomicU64::new(0),
            cache: Mutex::new(SnapshotCache {
                epoch: 0,
                csr: None,
            }),
            rebuilds: AtomicUsize::new(0),
        }
    }

    /// The live graph, for direct queries through
    /// [`crate::view::GraphView`] with zero snapshot cost.
    pub fn live(&self) -> &DynGraph<A> {
        &self.graph
    }

    /// Consumes the manager, returning the wrapped graph.
    pub fn into_inner(self) -> DynGraph<A> {
        self.graph
    }

    /// Current mutation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// True when the cached snapshot (if any) reflects every applied
    /// update — i.e. the next [`SnapshotManager::snapshot`] is free.
    pub fn is_clean(&self) -> bool {
        let cache = self.cache.lock();
        cache.csr.is_some() && cache.epoch == self.epoch()
    }

    /// Number of CSR rebuilds performed so far (the quantity the epoch
    /// cache exists to minimize).
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Marks the graph dirty without going through the manager's update
    /// methods (escape hatch for callers mutating `live()` directly).
    pub fn mark_dirty(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Inserts a timestamped edge, bumping the epoch only if an entry
    /// was actually stored (a deduplicated re-insert leaves the cached
    /// snapshot valid). Thread-safe.
    pub fn insert_edge(&self, e: TimedEdge) -> bool {
        let r = self.graph.insert_edge(e);
        if r {
            self.mark_dirty();
        }
        r
    }

    /// Deletes one occurrence of `(u, v)`, bumping the epoch only if an
    /// entry was actually removed (deleting an absent edge leaves the
    /// cached snapshot valid). Thread-safe.
    pub fn delete_edge(&self, u: u32, v: u32) -> bool {
        let r = self.graph.delete_edge(u, v);
        if r {
            self.mark_dirty();
        }
        r
    }

    /// Applies a single structural update, bumping the epoch only if it
    /// changed the graph. Thread-safe.
    pub fn apply(&self, upd: &Update) -> bool {
        let r = self.graph.apply(upd);
        if r {
            self.mark_dirty();
        }
        r
    }

    /// Applies a whole batch via [`apply_stream`], bumping the epoch
    /// once — the paper's bulk-synchronous pattern.
    pub fn apply_batch(&self, updates: &[Update]) {
        if updates.is_empty() {
            return;
        }
        apply_stream(&self.graph, updates);
        self.mark_dirty();
    }

    /// The CSR snapshot of the current state. Returns the cached build
    /// when the epoch has not moved; otherwise rebuilds, caches, and
    /// returns the fresh snapshot. The `Arc` keeps earlier snapshots
    /// alive for readers that are still traversing them.
    pub fn snapshot(&self) -> Arc<CsrGraph> {
        let mut cache = self.cache.lock();
        // Read the epoch under the lock: a concurrent mutation between an
        // earlier read and the build would otherwise stamp the fresh CSR
        // with a stale tag and force a spurious rebuild later.
        let target = self.epoch();
        if let Some(csr) = &cache.csr {
            if cache.epoch == target {
                return Arc::clone(csr);
            }
        }
        let csr = Arc::new(self.graph.to_csr());
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        cache.epoch = target;
        cache.csr = Some(Arc::clone(&csr));
        csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::CapacityHints;
    use crate::dynarr::DynArr;
    use crate::hybrid::HybridAdj;
    use crate::treapadj::TreapAdj;
    use snap_rmat::{Rmat, RmatParams, StreamBuilder};
    use std::collections::HashSet;

    fn workload() -> (usize, Vec<Update>) {
        let r = Rmat::new(RmatParams::paper(9, 8), 5);
        let edges = r.edges();
        let s = StreamBuilder::new(&edges, 1).construction_shuffled();
        (1 << 9, s)
    }

    /// Live (u, v) pairs after applying updates, as a multiset-insensitive
    /// set (duplicate R-MAT edges collapse).
    fn live_set<A: DynamicAdjacency>(g: &DynGraph<A>) -> HashSet<(u32, u32)> {
        let mut set = HashSet::new();
        for u in 0..g.num_vertices() as u32 {
            g.for_each_neighbor(u, &mut |e| {
                set.insert((u, e.nbr));
            });
        }
        set
    }

    fn reference_set(n: usize, updates: &[Update], directed: bool) -> HashSet<(u32, u32)> {
        // Sequential oracle with set semantics.
        let mut set = HashSet::new();
        let _ = n;
        for u in updates {
            let (a, b) = (u.edge.u, u.edge.v);
            match u.kind {
                UpdateKind::Insert => {
                    set.insert((a, b));
                    if !directed {
                        set.insert((b, a));
                    }
                }
                UpdateKind::Delete => {
                    set.remove(&(a, b));
                    if !directed {
                        set.remove(&(b, a));
                    }
                }
            }
        }
        set
    }

    #[test]
    fn stream_applies_all_insertions() {
        let (n, s) = workload();
        let g: DynGraph<DynArr> = DynGraph::directed(n, &CapacityHints::new(s.len()));
        apply_stream(&g, &s);
        assert_eq!(g.total_entries(), s.len());
        assert_eq!(live_set(&g), reference_set(n, &s, true));
    }

    #[test]
    fn vpart_matches_stream_semantics() {
        let (n, s) = workload();
        let g: DynGraph<DynArr> = DynGraph::undirected(n, &CapacityHints::new(s.len() * 2));
        apply_vpart(&g, &s, 4);
        assert_eq!(g.total_entries(), count_expected_halves(&s));
        assert_eq!(live_set(&g), reference_set(n, &s, false));
    }

    #[test]
    fn epart_matches_stream_semantics() {
        let (n, s) = workload();
        let g: DynGraph<DynArr> = DynGraph::undirected(n, &CapacityHints::new(s.len() * 2));
        apply_epart(&g, &s, 4);
        assert_eq!(g.total_entries(), count_expected_halves(&s));
        assert_eq!(live_set(&g), reference_set(n, &s, false));
    }

    #[test]
    fn batched_matches_stream_semantics() {
        let (n, s) = workload();
        let g: DynGraph<DynArr> = DynGraph::undirected(n, &CapacityHints::new(s.len() * 2));
        apply_batched(&g, &s);
        assert_eq!(g.total_entries(), count_expected_halves(&s));
        assert_eq!(live_set(&g), reference_set(n, &s, false));
    }

    fn count_expected_halves(s: &[Update]) -> usize {
        s.iter()
            .map(|u| if u.edge.u == u.edge.v { 1 } else { 2 })
            .sum()
    }

    #[test]
    fn mixed_stream_consistent_across_representations() {
        // Duplicate-free mixed workload so set semantics are well-defined
        // for all three representations.
        let n = 256usize;
        let mut updates = Vec::new();
        let mut present: HashSet<(u32, u32)> = HashSet::new();
        let mut rng = snap_util::rng::XorShift64::new(42);
        for _ in 0..20_000 {
            let u = rng.next_bounded(n as u64) as u32;
            let v = rng.next_bounded(n as u64) as u32;
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if present.contains(&key) {
                present.remove(&key);
                updates.push(Update::delete(snap_rmat::TimedEdge::new(key.0, key.1, 0)));
            } else {
                present.insert(key);
                updates.push(Update::insert(snap_rmat::TimedEdge::new(key.0, key.1, 1)));
            }
        }
        let reference = reference_set(n, &updates, false);

        let hints = CapacityHints::new(updates.len() * 2);
        let da: DynGraph<DynArr> = DynGraph::undirected(n, &hints);
        let tr: DynGraph<TreapAdj> = DynGraph::undirected(n, &hints);
        let hy: DynGraph<HybridAdj> = DynGraph::undirected(n, &hints);
        // NOTE: sequential application here — the stream has ordering
        // dependencies (delete after its insert), which parallel semantics
        // do not guarantee. Parallel equivalence is tested on commuting
        // streams in the integration suite.
        for u in &updates {
            da.apply(u);
            tr.apply(u);
            hy.apply(u);
        }
        assert_eq!(live_set(&da), reference);
        assert_eq!(live_set(&tr), reference);
        assert_eq!(live_set(&hy), reference);
    }

    #[test]
    fn semi_sort_bound_returns_nonzero_duration() {
        let (n, s) = workload();
        let d = semi_sort_bound(&s, n, false);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn snapshot_manager_caches_until_epoch_moves() {
        let (n, s) = workload();
        let g: DynGraph<HybridAdj> = DynGraph::undirected(n, &CapacityHints::new(s.len() * 2));
        let mgr = SnapshotManager::new(g);
        assert!(!mgr.is_clean(), "no snapshot built yet");
        mgr.apply_batch(&s);
        assert_eq!(mgr.rebuild_count(), 0, "updates alone must not rebuild");
        let s1 = mgr.snapshot();
        assert_eq!(mgr.rebuild_count(), 1);
        assert!(mgr.is_clean());
        // A burst of queries between batches: all hit the cache.
        for _ in 0..32 {
            let again = mgr.snapshot();
            assert!(
                Arc::ptr_eq(&s1, &again),
                "clean epoch must reuse the cached Arc"
            );
        }
        assert_eq!(mgr.rebuild_count(), 1, "zero rebuilds across the burst");
        // One more batch dirties the epoch; the next snapshot rebuilds once.
        mgr.apply_batch(&s[..4]);
        assert!(!mgr.is_clean());
        let s2 = mgr.snapshot();
        assert!(!Arc::ptr_eq(&s1, &s2));
        assert_eq!(mgr.rebuild_count(), 2);
    }

    #[test]
    fn snapshot_manager_single_updates_dirty_the_cache() {
        let g: DynGraph<DynArr> = DynGraph::undirected(8, &CapacityHints::new(16));
        let mgr = SnapshotManager::new(g);
        assert!(mgr.insert_edge(snap_rmat::TimedEdge::new(0, 1, 5)));
        let s1 = mgr.snapshot();
        assert_eq!(s1.num_entries(), 2);
        assert!(mgr.delete_edge(0, 1));
        let s2 = mgr.snapshot();
        assert_eq!(s2.num_entries(), 0);
        // The old Arc is still alive and unchanged for in-flight readers.
        assert_eq!(s1.num_entries(), 2);
        assert_eq!(mgr.rebuild_count(), 2);
    }

    #[test]
    fn snapshot_manager_noop_mutations_keep_cache_clean() {
        let g: DynGraph<TreapAdj> = DynGraph::undirected(4, &CapacityHints::new(8));
        let mgr = SnapshotManager::new(g);
        mgr.insert_edge(snap_rmat::TimedEdge::new(0, 1, 3));
        let s1 = mgr.snapshot();
        // Deleting an absent edge and re-inserting a deduplicated one
        // change nothing, so the cached snapshot must survive both.
        assert!(!mgr.delete_edge(2, 3));
        assert!(!mgr.insert_edge(snap_rmat::TimedEdge::new(0, 1, 3)));
        assert!(mgr.is_clean());
        let s2 = mgr.snapshot();
        assert!(Arc::ptr_eq(&s1, &s2), "no-op mutations must not invalidate");
        assert_eq!(mgr.rebuild_count(), 1);
    }

    #[test]
    fn snapshot_manager_mark_dirty_forces_rebuild() {
        let g: DynGraph<TreapAdj> = DynGraph::undirected(4, &CapacityHints::new(8));
        let mgr = SnapshotManager::new(g);
        let _ = mgr.snapshot();
        // Mutate through the live graph, bypassing the manager.
        mgr.live().insert_edge(snap_rmat::TimedEdge::new(1, 2, 3));
        mgr.mark_dirty();
        let s = mgr.snapshot();
        assert_eq!(s.num_entries(), 2);
        assert_eq!(mgr.rebuild_count(), 2);
    }

    #[test]
    fn vpart_single_worker_equals_sequential() {
        let (n, s) = workload();
        let g1: DynGraph<DynArr> = DynGraph::directed(n, &CapacityHints::new(s.len()));
        apply_vpart(&g1, &s, 1);
        let g2: DynGraph<DynArr> = DynGraph::directed(n, &CapacityHints::new(s.len()));
        for u in &s {
            g2.apply(u);
        }
        assert_eq!(live_set(&g1), live_set(&g2));
        assert_eq!(g1.total_entries(), g2.total_entries());
    }
}
