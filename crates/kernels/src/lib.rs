//! Parallel graph-analysis kernels for dynamic networks (Section 3).
//!
//! Every kernel is generic over [`snap_core::GraphView`], the read
//! abstraction of the workspace. The same entry point therefore runs on
//! either read path:
//!
//! - a frozen [`snap_core::CsrGraph`] snapshot — the paper's pattern of
//!   reformulating dynamic problems on static instances (via
//!   timestamps), fastest for traversal-heavy analytics; or
//! - a live [`snap_core::DynGraph`] — tombstone-skipping traversal of
//!   the dynamic representation in place, paying per-vertex locks but no
//!   snapshot rebuild, right for fresh or one-shot queries.
//!
//! `snap_core::engine::SnapshotManager` arbitrates between the two with
//! an epoch-tagged snapshot cache. The link-cut forest is the exception
//! that proves the rule: it is maintained *across* updates for O(diameter)
//! connectivity queries, and only its (re)construction consumes a view.
//!
//! - [`bfs`](mod@bfs) — lock-free level-synchronous parallel BFS with the
//!   unbalanced-degree optimization, and its temporal (timestamp-filtered)
//!   variant (Figure 10).
//! - [`cc`] — Shiloach–Vishkin parallel connected components.
//! - [`lcf`] — the parent-pointer link-cut forest: construction via
//!   parallel BFS, `link`/`cut`/`findroot`, batch connectivity queries
//!   (Figures 7–8), and replacement-edge search on deletions (extension).
//! - [`subgraph`] — the temporal induced-subgraph kernel (Figure 9),
//!   from edge lists, views, or in place on a dynamic graph.
//! - [`bc`] — Brandes-style betweenness centrality, static and temporal,
//!   exact and source-sampled approximate (Figure 11).
//! - [`stconn`] — early-exit s-t connectivity.
//! - [`sssp`] / [`msf`] / [`closeness`] / [`cluster`] / [`diameter`] /
//!   [`stress`] / [`temporal_reach`] — the extended kernel suite, all
//!   view-generic.
//!
//! The multi-threaded runtime lives one layer up in `snap-par`
//! (`par_bfs` / `par_cc` / `par_sssp` / `par_bc`): it shares this
//! crate's result vocabulary ([`BfsResult`], [`UNREACHED`],
//! [`sssp::INF`], the canonical min-id component labels, the
//! deterministic betweenness summation order of [`bc`]) and falls back
//! to the serial kernels here ([`serial_bfs`], [`connected_components`],
//! [`dijkstra`], [`betweenness_exact`]) below its size threshold, so
//! the two layers are interchangeable in call sites and comparable
//! bit-for-bit in tests.

#![deny(missing_docs)]

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod closeness;
pub mod cluster;
pub mod diameter;
pub mod lcf;
pub mod msf;
pub mod sssp;
pub mod stconn;
pub mod stress;
pub mod subgraph;
pub mod temporal_reach;

pub use bc::{betweenness_approx, betweenness_exact, temporal_betweenness_approx};
pub use bfs::{bfs, restricted_bfs_distances, serial_bfs, temporal_bfs, BfsResult, UNREACHED};
pub use cc::{component_count, connected_components, union_find_from_view};
pub use closeness::{closeness_approx, closeness_exact, harmonic_exact};
pub use cluster::{average_clustering, local_clustering, triangle_count, triangles_per_vertex};
pub use diameter::{double_sweep_lower_bound, exact_diameter};
pub use lcf::LinkCutForest;
pub use msf::{boruvka_msf, boruvka_msf_view, kruskal_msf, Msf};
pub use sssp::{delta_stepping, dijkstra};
pub use stconn::st_connectivity;
pub use stress::{stress_approx, stress_exact};
pub use subgraph::{
    induced_subgraph_csr, induced_subgraph_edges, induced_subgraph_vertices, induced_subgraph_view,
    TimeWindow,
};
pub use temporal_reach::{earliest_arrival, temporal_reach_count};
