//! Parallel single-source shortest paths: Δ-stepping.
//!
//! The paper's future-work section singles out SSSP on arbitrarily
//! weighted graphs as "challenging to parallelize efficiently", citing
//! the authors' own Δ-stepping study (Madduri, Bader, Berry, Crobak,
//! ALENEX 2007) as the state of the art this framework builds on. This is
//! that algorithm: vertices are bucketed by `dist / Δ`; each round
//! settles bucket `i` to a fixed point over its *light* edges
//! (weight ≤ Δ, which can re-queue into the same bucket), then relaxes
//! the *heavy* edges (weight > Δ, which always target later buckets) once.
//!
//! Edge weights are the paper's positive integer w(e); we reuse the
//! timestamp field as the weight, matching the weighted-graph definition
//! in Section 2 (unweighted graphs simply carry w(e) = 1).

use rayon::prelude::*;
use snap_core::GraphView;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distance of unreachable vertices.
pub const INF: u64 = u64::MAX;

/// Δ-stepping SSSP from `src`, weighting edge `e` by `max(ts(e), 1)`
/// (zero weights would break bucket monotonicity). Returns distances.
pub fn delta_stepping<V: GraphView>(view: &V, src: u32, delta: u64) -> Vec<u64> {
    let n = view.num_vertices();
    assert!((src as usize) < n, "source out of range");
    let delta = delta.max(1);
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    // ordering: Relaxed — pre-parallel initialization; the first
    // bucket's spawn barrier publishes it (invariant 8).
    dist[src as usize].store(0, Ordering::Relaxed);
    let mut buckets: Vec<Vec<u32>> = vec![vec![src]];
    let mut current = 0usize;
    while current < buckets.len() {
        // Settle the current bucket over light edges to a fixed point.
        let mut deleted: Vec<u32> = Vec::new();
        loop {
            let frontier: Vec<u32> = std::mem::take(&mut buckets[current]);
            if frontier.is_empty() {
                break;
            }
            deleted.extend_from_slice(&frontier);
            let requests: Vec<(u32, u64)> =
                relax_requests(view, &frontier, &dist, |w| weight(w) <= delta);
            relax_all(&dist, &requests, delta, &mut buckets, current);
        }
        // One heavy-edge pass over everything settled in this bucket.
        let requests: Vec<(u32, u64)> =
            relax_requests(view, &deleted, &dist, |w| weight(w) > delta);
        relax_all(&dist, &requests, delta, &mut buckets, current);
        current += 1;
    }
    dist.into_iter().map(|d| d.into_inner()).collect()
}

/// Expands each frontier vertex's qualifying edges into relaxation
/// requests `(target, tentative distance)`. CSR-backed views stream
/// their slices lazily (zero per-vertex allocation — this is the
/// innermost loop of every bucket round); live views buffer through
/// the callback API.
fn relax_requests<V: GraphView>(
    view: &V,
    frontier: &[u32],
    dist: &[AtomicU64],
    qualifies: impl Fn(u32) -> bool + Sync,
) -> Vec<(u32, u64)> {
    let qualifies = &qualifies;
    if let Some(csr) = view.as_csr() {
        return frontier
            .par_iter()
            .flat_map_iter(|&v| {
                // ordering: Relaxed — v's distance settled in an
                // earlier phase; the bucket join published it.
                let dv = dist[v as usize].load(Ordering::Relaxed);
                csr.neighbors(v)
                    .iter()
                    .zip(csr.timestamps(v))
                    .filter(move |&(_, &w)| qualifies(w))
                    .map(move |(&u, &w)| (u, dv.saturating_add(weight(w))))
            })
            .collect();
    }
    frontier
        .par_iter()
        .flat_map_iter(|&v| {
            // ordering: Relaxed — as in the CSR path above.
            let dv = dist[v as usize].load(Ordering::Relaxed);
            let mut out = Vec::new();
            view.for_each_edge(v, |u, w| {
                if qualifies(w) {
                    out.push((u, dv.saturating_add(weight(w))));
                }
            });
            out
        })
        .collect()
}

#[inline]
fn weight(ts: u32) -> u64 {
    (ts as u64).max(1)
}

/// Applies relaxation requests; improved vertices are queued into the
/// bucket of their new tentative distance (never before `floor`, since
/// edge weights are positive).
fn relax_all(
    dist: &[AtomicU64],
    requests: &[(u32, u64)],
    delta: u64,
    buckets: &mut Vec<Vec<u32>>,
    floor: usize,
) {
    // Parallel CAS-min pass; collect the vertices that actually improved.
    let improved: Vec<(u32, u64)> = requests
        .par_iter()
        .filter_map(|&(v, nd)| {
            // ordering: Relaxed (load and CAS) — distance words are
            // monotone-decreasing minima (invariant 7: the CAS is the
            // claim); the relax pass's join publishes them.
            let mut cur = dist[v as usize].load(Ordering::Relaxed);
            while nd < cur {
                // ordering: Relaxed — covered by the note above.
                match dist[v as usize].compare_exchange_weak(
                    cur,
                    nd,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return Some((v, nd)),
                    Err(now) => cur = now,
                }
            }
            None
        })
        .collect();
    // Sequential bucket insertion (duplicates across rounds are fine: a
    // stale queued vertex re-relaxes harmlessly).
    for (v, nd) in improved {
        let b = ((nd / delta) as usize).max(floor);
        if b >= buckets.len() {
            buckets.resize(b + 1, Vec::new());
        }
        buckets[b].push(v);
    }
}

/// Sequential Dijkstra oracle (binary heap).
pub fn dijkstra<V: GraphView>(view: &V, src: u32) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = view.num_vertices();
    let mut dist = vec![INF; n];
    dist[src as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        view.for_each_edge(v, |u, w| {
            let nd = d.saturating_add(weight(w));
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        });
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_core::CsrGraph;
    use snap_rmat::{Rmat, RmatParams, TimedEdge};

    fn weighted(n: usize, edges: &[(u32, u32, u32)]) -> CsrGraph {
        let e: Vec<TimedEdge> = edges
            .iter()
            .map(|&(u, v, w)| TimedEdge::new(u, v, w))
            .collect();
        CsrGraph::from_edges_undirected(n, &e)
    }

    #[test]
    fn weighted_path() {
        let g = weighted(4, &[(0, 1, 2), (1, 2, 3), (2, 3, 4)]);
        for delta in [1u64, 3, 100] {
            let d = delta_stepping(&g, 0, delta);
            assert_eq!(d, vec![0, 2, 5, 9], "delta {delta}");
        }
    }

    #[test]
    fn shortcut_beats_direct_heavy_edge() {
        // 0-2 costs 10 direct, 2+3 = 5 via 1.
        let g = weighted(3, &[(0, 2, 10), (0, 1, 2), (1, 2, 3)]);
        let d = delta_stepping(&g, 0, 4);
        assert_eq!(d[2], 5);
    }

    #[test]
    fn unreachable_is_inf() {
        let g = weighted(4, &[(0, 1, 1)]);
        let d = delta_stepping(&g, 0, 2);
        assert_eq!(d[2], INF);
        assert_eq!(d[3], INF);
    }

    #[test]
    fn zero_timestamps_treated_as_unit_weights() {
        let g = weighted(3, &[(0, 1, 0), (1, 2, 0)]);
        let d = delta_stepping(&g, 0, 1);
        assert_eq!(d, vec![0, 1, 2]);
    }

    #[test]
    fn matches_dijkstra_on_rmat_across_deltas() {
        let rm = Rmat::new(RmatParams::paper(10, 8).with_max_timestamp(100), 5);
        let g = CsrGraph::from_edges_undirected(1 << 10, &rm.edges());
        let oracle = dijkstra(&g, 0);
        for delta in [1u64, 8, 32, 128, 1 << 20] {
            let d = delta_stepping(&g, 0, delta);
            assert_eq!(d, oracle, "delta {delta} diverged from Dijkstra");
        }
    }

    #[test]
    fn delta_extremes_degenerate_correctly() {
        // delta = 1: pure Bellman-Ford-ish bucketing; delta = inf: one
        // bucket (Chaotic relaxation until fixpoint). Both must be exact.
        let rm = Rmat::new(RmatParams::paper(8, 6).with_max_timestamp(30), 6);
        let g = CsrGraph::from_edges_undirected(1 << 8, &rm.edges());
        let oracle = dijkstra(&g, 3);
        assert_eq!(delta_stepping(&g, 3, 1), oracle);
        assert_eq!(delta_stepping(&g, 3, u64::MAX / 4), oracle);
    }

    #[test]
    fn unit_weights_reduce_to_bfs() {
        let rm = Rmat::new(RmatParams::paper(9, 8).with_max_timestamp(0), 7);
        let g = CsrGraph::from_edges_undirected(1 << 9, &rm.edges());
        let d = delta_stepping(&g, 0, 1);
        let b = crate::bfs::bfs(&g, 0);
        for (v, &dv) in d.iter().enumerate() {
            if b.dist[v] == crate::bfs::UNREACHED {
                assert_eq!(dv, INF);
            } else {
                assert_eq!(dv, b.dist[v] as u64);
            }
        }
    }
}
