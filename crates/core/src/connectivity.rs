//! Incremental connectivity serving: a concurrent union-find index over
//! the dynamic graph.
//!
//! The paper's motivating workload is *serving connectivity queries on a
//! massive graph under a stream of updates*. The kernels answer those
//! queries by traversal (BFS / Shiloach–Vishkin) over a snapshot — an
//! O(n + m) recompute per batch, or worse, per query. This module is the
//! subsystem that makes the query path cheap:
//!
//! - **Insertions are free to index.** [`ConnectivityIndex`] maintains a
//!   lock-free union-find (`u32` parent forest, CAS hooking, path
//!   splitting). An edge insertion is one [`ConnectivityIndex::union`];
//!   `component(u)` / `same_component(u, v)` are then near-O(α) pointer
//!   chases with **zero traversals and zero CSR rebuilds**.
//! - **Deletions dirty one component, not the index.** Union-find cannot
//!   un-union, but a deletion can only split the single component that
//!   contained the edge. [`ConnectivityIndex::note_delete`] therefore
//!   marks that component *dirty*; every other component keeps serving
//!   lock-free. The next query touching a dirty component triggers a
//!   targeted repair: its member vertices are relabeled by a restricted
//!   connected-components pass over the **live**
//!   [`GraphView`] (serial here; `snap-par`
//!   plugs its parallel kernel in through
//!   [`ConnectivityIndex::repair_with`]).
//! - **Self-loops never dirty anything**: deleting `(u, u)` cannot
//!   disconnect, so it is ignored outright.
//!
//! Canonical labels: unions always hook the higher-id root under the
//! lower one and repairs relabel by minimum member id, so every stable
//! label is the component's minimum vertex id — bit-comparable with
//! `connected_components`, `par_cc`, and the union-find test oracle.
//!
//! # Concurrency contract
//!
//! Mutations (`union` / `note_insert` / `note_delete`) take `&self` and
//! are thread-safe, like the rest of the workspace. Queries are safe to
//! run concurrently with each other, including the repairs they trigger:
//! repairs serialize on an internal lock, members of a component under
//! repair are shielded by their dirty bits, and
//! [`ConnectivityIndex::clean_root`] re-checks root stability before
//! answering. Queries racing *mutations* follow the workspace's
//! bulk-synchronous discipline (apply the batch, then query); see
//! [`crate::engine::SnapshotManager`] for the epoch bookkeeping that
//! detects out-of-band mutation and falls back to a full rebuild.

use crate::view::GraphView;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Connectivity-index instrumentation, shared by every index in the
/// process (ZST no-ops without the `obs` feature). The existing
/// per-index `repairs`/`full_rebuilds` counters stay authoritative for
/// the public API; these aggregate across indexes for scraping.
struct ConnMetrics {
    dirty_marks: snap_obs::Counter,
    repairs: snap_obs::Counter,
    full_rebuilds: snap_obs::Counter,
    shield_events: snap_obs::Counter,
}

fn conn_metrics() -> &'static ConnMetrics {
    static M: OnceLock<ConnMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = snap_obs::MetricsRegistry::global();
        ConnMetrics {
            dirty_marks: r.counter(
                "snap_conn_dirty_marks_total",
                "Components marked dirty by deletions",
            ),
            repairs: r.counter(
                "snap_conn_repairs_total",
                "Targeted component repairs (one dirty component each)",
            ),
            full_rebuilds: r.counter(
                "snap_conn_full_rebuilds_total",
                "Full index rebuilds (incremental maintenance keeps this at zero)",
            ),
            shield_events: r.counter(
                "snap_conn_shield_events_total",
                "Vertices shielded during repairs and rebuilds",
            ),
        }
    })
}

/// Incrementally maintained connectivity over a dynamic graph: concurrent
/// union-find with per-component dirty tracking and targeted repair. See
/// the [module docs](self) for the design and the concurrency contract.
///
/// # Examples
///
/// ```
/// use snap_core::adjacency::CapacityHints;
/// use snap_core::{ConnectivityIndex, DynGraph, HybridAdj};
/// use snap_rmat::TimedEdge;
///
/// let g: DynGraph<HybridAdj> = DynGraph::undirected(5, &CapacityHints::new(16));
/// for (u, v) in [(0, 1), (1, 2), (3, 4)] {
///     g.insert_edge(TimedEdge::new(u, v, 1));
/// }
/// let idx = ConnectivityIndex::from_view(&g);
/// assert!(idx.same_component(&g, 0, 2));
/// assert!(!idx.same_component(&g, 0, 3));
/// assert_eq!(idx.component_count(&g), 2);
///
/// // A deletion dirties one component; the next query touching it
/// // triggers a targeted repair over the live view.
/// g.delete_edge(1, 2);
/// idx.note_delete(1, 2);
/// assert!(!idx.same_component(&g, 0, 2));
/// assert_eq!(idx.repair_count(), 1);
/// ```
pub struct ConnectivityIndex {
    /// Union-find forest. Roots satisfy `parent[r] == r`; every hook
    /// points a higher id at a lower one, so a component's root is its
    /// minimum vertex id.
    parent: Vec<AtomicU32>,
    /// One bit per vertex. A set bit on a *root* marks its component
    /// dirty; during a repair the bits of every member shield concurrent
    /// readers (they re-route into the repair path until the new labels
    /// are fully published).
    dirty: Vec<AtomicU64>,
    /// Fast path for [`ConnectivityIndex::has_dirty`]: avoids scanning
    /// the bitmap when no deletion has run since the last full repair.
    any_dirty: AtomicBool,
    /// Live component count (successful unions decrement, repairs add
    /// back the splits they discover).
    components: AtomicUsize,
    /// Epoch of the owning [`SnapshotManager`](crate::engine::SnapshotManager)
    /// this index has absorbed; `0` until the manager syncs it.
    synced_epoch: AtomicU64,
    /// Bumped at the *start* of every routed notification
    /// (`note_insert` / `note_delete`), before the forest op. A full
    /// rebuild samples it before its view scan and again after its
    /// shield-clear: movement means a routed change raced the rebuild —
    /// its graph mutation may have been missed by the scan or its
    /// union/mark wiped by the clear — so the rebuild must not publish
    /// (invariant 6: the epoch gap stays sticky instead).
    note_gen: AtomicU64,
    repairs: AtomicUsize,
    full_rebuilds: AtomicUsize,
    /// Serializes repairs and full rebuilds; clean-component queries
    /// never take it.
    repair_lock: Mutex<()>,
}

impl ConnectivityIndex {
    /// An index over `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
            dirty: (0..n.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            any_dirty: AtomicBool::new(false),
            components: AtomicUsize::new(n),
            synced_epoch: AtomicU64::new(0),
            note_gen: AtomicU64::new(0),
            repairs: AtomicUsize::new(0),
            full_rebuilds: AtomicUsize::new(0),
            repair_lock: Mutex::new(()),
        }
    }

    /// Builds the index from the live edges of a view (one union per
    /// stored entry; the initial build is not counted as a rebuild).
    pub fn from_view<V: GraphView>(view: &V) -> Self {
        let idx = Self::new(view.num_vertices());
        idx.absorb(view);
        idx
    }

    fn absorb<V: GraphView>(&self, view: &V) {
        for u in 0..self.parent.len() as u32 {
            view.for_each_edge(u, |w, _| {
                self.union(u, w);
            });
        }
    }

    /// Number of indexed vertices.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the index covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    // ---- the concurrent union-find core --------------------------------

    /// Walk depth past which [`ConnectivityIndex::find`] tries to
    /// flatten the chain (under the repair lock).
    const FIND_COMPRESS_DEPTH: usize = 16;

    /// Current root of `x`'s tree. The walk itself is **read-only**:
    /// a query must not path-split lock-free, because a repair can
    /// *raise* parent values when it publishes a split, and a racing
    /// splitting CAS whose expected value coincides with the freshly
    /// published one (ABA on vertex ids) would overwrite the repair
    /// with a stale ancestor. Mutations compress through
    /// `ConnectivityIndex::find_compress` and repairs flatten their
    /// whole component, which keeps typical walks short; if an
    /// adversarial insertion order still builds a deep chain (union by
    /// min-id has no rank), the walk flattens it opportunistically —
    /// but only under the repair lock, which excludes the repair
    /// publication the read-only rule exists to avoid, via `try_lock`
    /// so the query never blocks and never deadlocks from locked
    /// contexts.
    pub fn find(&self, x: u32) -> u32 {
        let mut cur = x;
        let mut steps = 0usize;
        loop {
            // ordering: Acquire — a walk that reads a repair-published
            // parent must also see every label store that preceded its
            // publication (invariant 5: the query walk is read-only and
            // leans on publication order, not locks).
            let p = self.parent[cur as usize].load(Ordering::Acquire);
            if p == cur {
                break;
            }
            cur = p;
            steps += 1;
        }
        if steps > Self::FIND_COMPRESS_DEPTH {
            if let Some(_guard) = self.repair_lock.try_lock() {
                self.find_compress(x);
            }
        }
        cur
    }

    /// [`ConnectivityIndex::find`] with path splitting: every visited
    /// vertex is CAS-pointed at its grandparent, halving the path for
    /// later walks. Only the mutation side uses it — during a mutation
    /// phase parents only ever decrease, so a stale split write is still
    /// a valid ancestor; concurrent *repairs* (query side) can raise
    /// parents, which is why queries use the read-only walk.
    fn find_compress(&self, mut x: u32) -> u32 {
        loop {
            // ordering: Acquire (both loads) — grandparent chasing must
            // observe hooks published by racing unions (invariant 5).
            let p = self.parent[x as usize].load(Ordering::Acquire);
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize].load(Ordering::Acquire); // ordering: see above
            if gp == p {
                return p;
            }
            // ordering: AcqRel on success — the split write publishes a
            // still-valid ancestor to later walks; Relaxed on failure —
            // the retry re-reads through the Acquire loads above.
            let _ = self.parent[x as usize].compare_exchange_weak(
                p,
                gp,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
            x = gp;
        }
    }

    /// Merges the components of `u` and `v`; returns `true` if they were
    /// distinct. Always hooks the higher root under the lower, so labels
    /// only ever decrease and settle on the component minimum. If either
    /// side was dirty, the merged component is dirty.
    pub fn union(&self, u: u32, v: u32) -> bool {
        loop {
            let ru = self.find_compress(u);
            let rv = self.find_compress(v);
            if ru == rv {
                return false;
            }
            let (lo, hi) = (ru.min(rv), ru.max(rv));
            // ordering: AcqRel — a successful hook is the union's
            // publication point (invariant 5: mutation-side labels only
            // ever decrease); Relaxed on failure — the loop re-finds
            // both roots before retrying.
            if self.parent[hi as usize]
                .compare_exchange(hi, lo, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // ordering: AcqRel — the decrement is ordered after the
                // winning hook, pairing with the Acquire load in
                // `component_count` so a published merge is counted
                // exactly once.
                self.components.fetch_sub(1, Ordering::AcqRel);
                if self.bit_get(hi) {
                    // The absorbed component was awaiting repair; the
                    // merged one inherits that debt.
                    self.mark_component_dirty(lo);
                }
                return true;
            }
            // Lost the hook race; re-resolve both roots and retry.
        }
    }

    // ---- update notifications ------------------------------------------

    /// Records an edge insertion. Returns `true` if it merged two
    /// components. Self-loops are connectivity no-ops.
    pub fn note_insert(&self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        // The bump precedes the forest op: a rebuild whose scan-start
        // read includes it also sees the caller's graph mutation (which
        // precedes this call), so the scan absorbs the edge; a rebuild
        // that misses it here observes the moved generation after its
        // shield-clear — before which any wiped union/mark must have
        // landed — and refuses to publish (invariant 6).
        //
        // ordering: Release — pairs with the rebuild's Acquire
        // generation reads; see the note_gen field docs.
        self.note_gen.fetch_add(1, Ordering::Release);
        self.union(u, v)
    }

    /// Records an edge deletion by marking the affected component dirty.
    /// Deleting a self-loop cannot disconnect anything and is ignored.
    /// (The caller guarantees the edge existed, so `u` and `v` share a
    /// component and one mark covers both.)
    pub fn note_delete(&self, u: u32, v: u32) {
        if u == v {
            return;
        }
        // Bump-before-mark: same contract as in `note_insert` — a
        // rebuild either saw this deletion in the view or detects the
        // generation movement after its shield-clear and re-shields
        // instead of swallowing the mark below (invariant 6).
        //
        // ordering: Release — pairs with the rebuild's Acquire reads.
        self.note_gen.fetch_add(1, Ordering::Release);
        self.mark_component_dirty(u);
    }

    /// Marks `x`'s component dirty, chasing concurrent unions: after
    /// setting a root's bit the root is re-resolved, so a hook racing
    /// with the mark cannot strand the bit on a non-root (the union path
    /// propagates bits it sees; this loop covers the set-after-hook
    /// interleaving).
    pub fn mark_component_dirty(&self, x: u32) {
        conn_metrics().dirty_marks.inc();
        // ordering: Release (downgraded from SeqCst by the PR 9 audit) —
        // `any_dirty` is a fast-path hint only: the per-vertex dirty
        // bits are authoritative for queries (invariant 4), so the flag
        // needs visibility (pairs with the Acquire in `has_dirty`), not
        // a total order against the bitmap.
        self.any_dirty.store(true, Ordering::Release);
        let mut r = self.find(x);
        loop {
            self.bit_set(r);
            let r2 = self.find(r);
            if r2 == r {
                return;
            }
            r = r2;
        }
    }

    /// True if `x`'s component has a pending deletion to repair.
    pub fn is_component_dirty(&self, x: u32) -> bool {
        self.bit_get(self.find(x))
    }

    /// True if any component is awaiting repair (may stay `true` until
    /// the next [`ConnectivityIndex::repair_all`]).
    pub fn has_dirty(&self) -> bool {
        // ordering: Acquire — pairs with the Release stores of the hint
        // flag; the authoritative state is the dirty bitmap.
        self.any_dirty.load(Ordering::Acquire)
    }

    // ---- queries (self-repairing) --------------------------------------

    /// Canonical component label (minimum member id) of `u`, repairing
    /// `u`'s component first if a deletion left it dirty.
    pub fn component<V: GraphView>(&self, view: &V, u: u32) -> u32 {
        self.clean_root(view, u)
    }

    /// True if `u` and `v` are connected in `view`, repairing any dirty
    /// component the query touches.
    pub fn same_component<V: GraphView>(&self, view: &V, u: u32, v: u32) -> bool {
        self.clean_root(view, u) == self.clean_root(view, v)
    }

    /// Number of components, after repairing every dirty one.
    pub fn component_count<V: GraphView>(&self, view: &V) -> usize {
        self.repair_all(view);
        // ordering: Acquire (downgraded from SeqCst by the PR 9 audit)
        // — pairs with the AcqRel counter updates, so the count read
        // after `repair_all` reflects every published merge and split.
        self.components.load(Ordering::Acquire)
    }

    /// Canonical labels for every vertex, after repairing every dirty
    /// component — directly comparable with `connected_components` /
    /// `par_cc` output on the same view.
    pub fn labels<V: GraphView>(&self, view: &V) -> Vec<u32> {
        self.repair_all(view);
        (0..self.parent.len() as u32)
            .map(|v| self.find(v))
            .collect()
    }

    /// Root of `u` guaranteed clean *and stable*: if the root is dirty
    /// the component is repaired first, and a clean answer is re-checked
    /// against a second `find` so a reader overlapping a repair's
    /// publication window re-routes instead of mixing old and new labels.
    pub fn clean_root<V: GraphView>(&self, view: &V, u: u32) -> u32 {
        loop {
            let r = self.find(u);
            if self.bit_get(r) {
                self.repair(view, u);
                continue;
            }
            if self.find(u) == r {
                return r;
            }
        }
    }

    // ---- repair --------------------------------------------------------

    /// Targeted repair of `u`'s component with the built-in serial
    /// restricted relabeling ([`restricted_component_labels`]). Returns
    /// the post-repair root of `u`. `snap-par` callers use
    /// [`ConnectivityIndex::repair_with`] with the parallel kernel.
    pub fn repair<V: GraphView>(&self, view: &V, u: u32) -> u32 {
        self.repair_with(view, u, restricted_component_labels)
    }

    /// Targeted repair of `u`'s component using `relabel` to compute the
    /// new canonical labels: `relabel(view, verts)` receives the
    /// component's member vertices (ascending) and must return, for each
    /// position, the minimum vertex id of that member's post-deletion
    /// component within `verts`. Repairs serialize on the internal lock
    /// and re-check dirtiness under it, so concurrent queries on the
    /// same dirty component coalesce into one repair.
    pub fn repair_with<V, F>(&self, view: &V, u: u32, relabel: F) -> u32
    where
        V: GraphView,
        F: FnOnce(&V, &[u32]) -> Vec<u32>,
    {
        let _guard = self.repair_lock.lock();
        let root = self.find(u);
        if !self.bit_get(root) {
            // A racing query already repaired this component.
            return root;
        }
        let verts = self.members_of(root);
        self.relabel_members_locked(view, &verts, relabel);
        self.find(u)
    }

    /// Shield, relabel, and publish one component's members. Caller
    /// holds `repair_lock` and has confirmed the component is dirty.
    fn relabel_members_locked<V, F>(&self, view: &V, verts: &[u32], relabel: F)
    where
        V: GraphView,
        F: FnOnce(&V, &[u32]) -> Vec<u32>,
    {
        // A note racing this repair is detected through the generation:
        // one counted by this read applied its graph mutation before the
        // relabel's view read below, so the new labels absorb it.
        //
        // ordering: Acquire — pairs with the note-path Release bumps;
        // see the note_gen field docs (invariant 6).
        let gen_at_scan = self.note_gen.load(Ordering::Acquire);
        // Shield phase: with every member bit set, any concurrent reader
        // resolving into this component sees "dirty" and waits on the
        // lock instead of consuming half-published labels.
        for &v in verts {
            self.bit_set(v);
        }
        let labels = relabel(view, verts);
        debug_assert_eq!(labels.len(), verts.len(), "relabel must cover all members");
        let mut new_roots = 0usize;
        for (&v, &l) in verts.iter().zip(&labels) {
            // ordering: Release (downgraded from SeqCst by the PR 9
            // audit) — label publication under the shield (invariant 4):
            // every member bit is still set, so a reader either sees the
            // shield and re-routes into the locked repair path, or its
            // Acquire walk synchronizes with this store.
            self.parent[v as usize].store(l, Ordering::Release);
            if l == v {
                new_roots += 1;
            }
        }
        // Publish: clearing the shields *after* every parent store means
        // a reader that observes a clean bit also observes final labels
        // (the AcqRel bit_unset carries the release of the stores above).
        for &v in verts {
            self.bit_unset(v);
        }
        // The clears above may have wiped the mark of a `note_delete`
        // that raced this repair (its deletion applied after the view
        // read, its mark landing before the sweep). A note's generation
        // bump precedes its mark, so the wipe is visible here: re-dirty
        // the repaired component(s) and let the next query repair again
        // — sticky, like a rebuild that refuses to publish (invariant 6).
        //
        // ordering: Acquire — closes the window opened at gen_at_scan.
        if self.note_gen.load(Ordering::Acquire) != gen_at_scan {
            for (&v, &l) in verts.iter().zip(&labels) {
                if l == v {
                    self.mark_component_dirty(v);
                }
            }
        }
        // ordering: AcqRel — split accounting published together with
        // the labels; pairs with the Acquire in `component_count`.
        self.components
            .fetch_add(new_roots.saturating_sub(1), Ordering::AcqRel);
        // ordering: Relaxed — statistics counter, no ordering consumed.
        self.repairs.fetch_add(1, Ordering::Relaxed);
        let m = conn_metrics();
        m.repairs.inc();
        m.shield_events.add(verts.len() as u64);
    }

    /// Repairs every dirty component (serial relabeling). Cheap when
    /// nothing is dirty; otherwise one O(n·α) grouping pass collects
    /// every dirty component's members at once, so the scan cost is paid
    /// once rather than once per dirty component.
    pub fn repair_all<V: GraphView>(&self, view: &V) {
        if !self.has_dirty() {
            return;
        }
        let _guard = self.repair_lock.lock();
        // Clear the flag before scanning: a mark racing this scan re-sets
        // it and the next repair_all picks the component up.
        // ordering: Release (downgraded from SeqCst by the PR 9 audit) —
        // hint only; point queries route through the authoritative dirty
        // bits (invariant 4) and never consult this flag.
        self.any_dirty.store(false, Ordering::Release);
        let mut groups: std::collections::BTreeMap<u32, Vec<u32>> =
            std::collections::BTreeMap::new();
        for v in 0..self.parent.len() as u32 {
            let r = self.find(v);
            if self.bit_get(r) {
                groups.entry(r).or_default().push(v);
            }
        }
        for verts in groups.values() {
            self.relabel_members_locked(view, verts, restricted_component_labels);
        }
    }

    /// Member vertices (ascending) of the component rooted at `root`.
    /// One `find` per vertex — a targeted repair's collection cost is
    /// O(n·α) regardless of the component's size (the relabel itself
    /// then scales with the component); batch callers use
    /// [`ConnectivityIndex::repair_all`], which groups every dirty
    /// component in a single pass.
    pub fn members_of(&self, root: u32) -> Vec<u32> {
        (0..self.parent.len() as u32)
            .filter(|&v| self.find(v) == root)
            .collect()
    }

    /// Discards the forest and re-absorbs the view — the fallback when
    /// the owning manager detects out-of-band mutation (see
    /// [`ConnectivityIndex::synced_epoch`]). Returns `true` when the
    /// rebuild converged (no routed notification raced the scan); on
    /// `false` every vertex is left shielded, so queries keep repairing
    /// from the live view until a later rebuild converges.
    pub fn rebuild_from<V: GraphView>(&self, view: &V) -> bool {
        let _guard = self.repair_lock.lock();
        self.rebuild_locked(view)
    }

    /// Rebuilds from `view` only if the synced epoch is still behind
    /// `epoch` — double-checked under the repair lock, so concurrent
    /// stale queries coalesce into one rebuild — then records the epoch
    /// as absorbed. If routed updates race the rebuild faster than it
    /// can converge, the epoch is deliberately **not** recorded: the
    /// gap stays sticky (invariant 6) and the next query resyncs again,
    /// which settles as soon as the writers quiesce.
    pub fn resync<V: GraphView>(&self, view: &V, epoch: u64) {
        let _guard = self.repair_lock.lock();
        if self.synced_epoch() < epoch && self.rebuild_locked(view) {
            self.sync_to(epoch);
        }
    }

    /// Rebuild passes attempted before giving up on a generation-stable
    /// scan and leaving the forest shielded instead.
    const REBUILD_RETRIES: usize = 4;

    fn rebuild_locked<V: GraphView>(&self, view: &V) -> bool {
        assert_eq!(view.num_vertices(), self.parent.len(), "vertex count moved");
        let m = conn_metrics();
        let mut converged = false;
        for _attempt in 0..Self::REBUILD_RETRIES {
            // A routed `note_insert`/`note_delete` whose generation bump
            // lands before this read also applied its graph mutation
            // before it (the bump is the note's last act), so the scan
            // below observes it. One that bumps later is detected at the
            // bottom of the pass.
            //
            // ordering: Acquire — pairs with the Release bumps in the
            // note paths; see the note_gen field docs (invariant 6).
            let gen_at_scan = self.note_gen.load(Ordering::Acquire);
            // Shield *every* vertex first: a lock-free reader racing
            // this rebuild re-routes into the (locked) repair path
            // instead of observing the half-reset forest.
            //
            // ordering: Release on every store in this rebuild
            // (downgraded from SeqCst by the PR 9 audit). The protocol
            // needs no total order: a reader whose walk acquires ANY
            // value written below synchronizes with that store and
            // therefore also sees the shield words stored before it
            // (invariant 4), so its bit_get re-routes into the locked
            // repair path; a reader that saw only pre-rebuild values
            // linearizes before the rebuild; and a mixed walk is caught
            // by clean_root's stability re-check.
            for w in &self.dirty {
                w.store(u64::MAX, Ordering::Release); // ordering: see above
            }
            self.any_dirty.store(true, Ordering::Release); // ordering: see above
            for v in 0..self.parent.len() {
                self.parent[v].store(v as u32, Ordering::Release); // ordering: see above
            }
            // ordering: Release — rebuild publication, see the note above.
            self.components.store(self.parent.len(), Ordering::Release);
            self.absorb(view);
            m.shield_events.add(self.parent.len() as u64);
            // ordering: Acquire — closes the generation window opened
            // above; movement means a routed note raced the scan and
            // its graph mutation may have been missed.
            if self.note_gen.load(Ordering::Acquire) != gen_at_scan {
                continue;
            }
            // Tentatively publish: the view fully absorbed, all debts
            // (including any pre-rebuild dirt) are settled.
            for w in &self.dirty {
                w.store(0, Ordering::Release); // ordering: see rebuild note
            }
            self.any_dirty.store(false, Ordering::Release); // ordering: see rebuild note

            // Confirm nothing raced the clear itself: a note's bump
            // precedes its forest op, so any union or dirty mark the
            // lines above could have wiped is visible in the generation
            // by now — if it moved, re-shield with another pass.
            //
            // ordering: Acquire — same pairing as the scan-start read.
            if self.note_gen.load(Ordering::Acquire) == gen_at_scan {
                converged = true;
                break;
            }
        }
        // Not converged: the last pass left every shield up. Queries
        // repair their component from the live view on demand, and the
        // caller must not mark the target epoch absorbed.
        // ordering: Relaxed — statistics counter, no ordering consumed.
        self.full_rebuilds.fetch_add(1, Ordering::Relaxed);
        m.full_rebuilds.inc();
        converged
    }

    // ---- counters & epoch coupling -------------------------------------

    /// Number of targeted repairs performed (each covers one dirty
    /// component). A clean query burst leaves this flat.
    pub fn repair_count(&self) -> usize {
        // ordering: Relaxed — statistics counter, no ordering consumed.
        self.repairs.load(Ordering::Relaxed)
    }

    /// Number of full rebuilds ([`ConnectivityIndex::rebuild_from`]) —
    /// the quantity incremental maintenance exists to keep at zero.
    pub fn full_rebuild_count(&self) -> usize {
        // ordering: Relaxed — statistics counter, no ordering consumed.
        self.full_rebuilds.load(Ordering::Relaxed)
    }

    /// Manager epoch this index has absorbed (monotone; see
    /// [`crate::engine::SnapshotManager`]).
    pub fn synced_epoch(&self) -> u64 {
        // ordering: Acquire — pairs with the AcqRel epoch bumps so an
        // observed epoch implies the updates it covers (invariant 6).
        self.synced_epoch.load(Ordering::Acquire)
    }

    /// Advances the absorbed epoch (monotone max, so racing update
    /// threads cannot move it backwards). Use only when the index
    /// provably reflects everything up to `epoch` — at build time and
    /// after a rebuild; routed per-update bumps go through
    /// [`ConnectivityIndex::sync_change`].
    pub fn sync_to(&self, epoch: u64) {
        // ordering: AcqRel — monotone epoch publication (invariant 6:
        // racing bumps cannot move the absorbed epoch backwards).
        self.synced_epoch.fetch_max(epoch, Ordering::AcqRel);
    }

    /// Absorbs exactly one routed epoch bump: steps the synced epoch
    /// from `new_epoch - 1` to `new_epoch`, and *only* that step. A
    /// failed step means an unabsorbed epoch sits below ours — an
    /// out-of-band `mark_dirty`, or a racing routed bump that has not
    /// stepped yet — and the gap must stay sticky so the next query
    /// resyncs instead of being fast-forwarded over it. (A transient
    /// gap from racing routed bumps costs at most one conservative
    /// rebuild; absorbing a real gap would serve stale answers.)
    pub fn sync_change(&self, new_epoch: u64) {
        // ordering: AcqRel on the exact step (invariant 6: an unabsorbed
        // gap below stays sticky); Relaxed on failure — the gap itself
        // is the signal, no data is read through the failed exchange.
        let _ = self.synced_epoch.compare_exchange(
            new_epoch.wrapping_sub(1),
            new_epoch,
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
    }

    // ---- dirty bitmap ---------------------------------------------------
    //
    // The shield-bit publication protocol (invariant 4). The RMWs are
    // AcqRel and the load Acquire (downgraded from SeqCst by the PR 9
    // audit): bit_unset is a repair's publication point — its release
    // makes every preceding label store visible to a reader that
    // acquires the cleared word — and bit_set's release orders the
    // shield before the relabel that follows it. No site needs a total
    // order across *different* words: cross-word interleavings are
    // resolved by clean_root's stability re-check and the repair lock.

    #[inline]
    fn bit_set(&self, i: u32) {
        // ordering: AcqRel — see the shield publication note above.
        self.dirty[i as usize >> 6].fetch_or(1 << (i & 63), Ordering::AcqRel);
    }

    #[inline]
    fn bit_unset(&self, i: u32) {
        // ordering: AcqRel — see the shield publication note above.
        self.dirty[i as usize >> 6].fetch_and(!(1u64 << (i & 63)), Ordering::AcqRel);
    }

    #[inline]
    fn bit_get(&self, i: u32) -> bool {
        // ordering: Acquire — see the shield publication note above.
        self.dirty[i as usize >> 6].load(Ordering::Acquire) & (1 << (i & 63)) != 0
    }
}

/// Serial restricted connected components: canonical (minimum-id) labels
/// for `verts` — a component's member list, ascending — over the live
/// edges of `view`. Edges leaving `verts` are ignored (a repair's member
/// set is closed, since cross-component insertions union eagerly). This
/// is the built-in relabeler for [`ConnectivityIndex::repair`]; `snap-par`
/// supplies a parallel drop-in with the same contract.
pub fn restricted_component_labels<V: GraphView>(view: &V, verts: &[u32]) -> Vec<u32> {
    // Position-indexed union-find; positions are id-ordered because
    // `verts` is ascending, so min-position roots are min-id labels.
    let k = verts.len();
    let mut parent: Vec<u32> = (0..k as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let g = parent[parent[x as usize] as usize];
            parent[x as usize] = g;
            x = g;
        }
        x
    }
    for (i, &v) in verts.iter().enumerate() {
        view.for_each_edge(v, |w, _| {
            if let Ok(j) = verts.binary_search(&w) {
                let ri = find(&mut parent, i as u32);
                let rj = find(&mut parent, j as u32);
                if ri != rj {
                    let (lo, hi) = (ri.min(rj), ri.max(rj));
                    parent[hi as usize] = lo;
                }
            }
        });
    }
    (0..k as u32)
        .map(|i| verts[find(&mut parent, i) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::CapacityHints;
    use crate::dynarr::DynArr;
    use crate::graph::DynGraph;
    use crate::hybrid::HybridAdj;
    use crate::treapadj::TreapAdj;
    use snap_rmat::TimedEdge;

    fn graph<A: crate::adjacency::DynamicAdjacency>(n: usize, edges: &[(u32, u32)]) -> DynGraph<A> {
        let g = DynGraph::undirected(n, &CapacityHints::new(edges.len() * 2 + 8));
        for &(u, v) in edges {
            g.insert_edge(TimedEdge::new(u, v, 1));
        }
        g
    }

    #[test]
    fn unions_settle_on_min_id_labels() {
        let idx = ConnectivityIndex::new(8);
        assert!(idx.note_insert(5, 3));
        assert!(idx.note_insert(3, 7));
        assert!(!idx.note_insert(7, 5), "already connected");
        assert_eq!(idx.find(5), 3);
        assert_eq!(idx.find(7), 3);
        assert_eq!(idx.find(3), 3);
        assert_eq!(idx.find(0), 0);
        let g: DynGraph<DynArr> = graph(8, &[(5, 3), (3, 7)]);
        assert_eq!(idx.component_count(&g), 6);
    }

    #[test]
    fn self_loops_are_connectivity_noops() {
        let idx = ConnectivityIndex::new(4);
        assert!(!idx.note_insert(2, 2));
        idx.note_delete(2, 2);
        assert!(!idx.has_dirty(), "self-loop delete must not dirty anything");
        assert!(!idx.is_component_dirty(2));
    }

    #[test]
    fn from_view_matches_incremental() {
        let edges = [(0, 1), (1, 2), (4, 5)];
        let g: DynGraph<HybridAdj> = graph(8, &edges);
        let built = ConnectivityIndex::from_view(&g);
        let inc = ConnectivityIndex::new(8);
        for &(u, v) in &edges {
            inc.note_insert(u, v);
        }
        assert_eq!(built.labels(&g), inc.labels(&g));
        assert_eq!(built.component_count(&g), 5);
        assert_eq!(
            built.full_rebuild_count(),
            0,
            "initial build is not a rebuild"
        );
    }

    #[test]
    fn deletion_dirties_only_its_component() {
        let g: DynGraph<TreapAdj> = graph(8, &[(0, 1), (1, 2), (4, 5)]);
        let idx = ConnectivityIndex::from_view(&g);
        g.delete_edge(1, 2);
        idx.note_delete(1, 2);
        assert!(idx.is_component_dirty(0));
        assert!(idx.is_component_dirty(2));
        assert!(
            !idx.is_component_dirty(4),
            "untouched component stays clean"
        );
        assert!(!idx.is_component_dirty(7));
    }

    #[test]
    fn repair_splits_the_component() {
        let g: DynGraph<DynArr> = graph(6, &[(0, 1), (1, 2), (2, 3)]);
        let idx = ConnectivityIndex::from_view(&g);
        assert_eq!(idx.component_count(&g), 3); // {0..3}, {4}, {5}
        g.delete_edge(1, 2);
        idx.note_delete(1, 2);
        assert!(idx.same_component(&g, 0, 1));
        assert!(idx.same_component(&g, 2, 3));
        assert!(!idx.same_component(&g, 1, 2), "split must be observed");
        assert_eq!(idx.component(&g, 3), 2);
        assert_eq!(idx.component_count(&g), 4);
        assert!(idx.repair_count() >= 1);
        assert!(!idx.has_dirty() || !idx.is_component_dirty(0));
    }

    #[test]
    fn deletion_that_keeps_connectivity_repairs_to_one_component() {
        // Triangle: deleting one edge leaves it connected.
        let g: DynGraph<HybridAdj> = graph(4, &[(0, 1), (1, 2), (0, 2)]);
        let idx = ConnectivityIndex::from_view(&g);
        g.delete_edge(0, 2);
        idx.note_delete(0, 2);
        assert!(idx.same_component(&g, 0, 2), "still connected through 1");
        assert_eq!(idx.repair_count(), 1);
        assert_eq!(idx.component_count(&g), 2); // {0,1,2}, {3}
    }

    #[test]
    fn clean_query_burst_triggers_no_repairs() {
        let g: DynGraph<DynArr> = graph(16, &[(0, 1), (2, 3), (4, 5)]);
        let idx = ConnectivityIndex::from_view(&g);
        for _ in 0..64 {
            assert!(idx.same_component(&g, 0, 1));
            assert!(!idx.same_component(&g, 0, 2));
        }
        assert_eq!(idx.repair_count(), 0);
        assert_eq!(idx.full_rebuild_count(), 0);
    }

    #[test]
    fn insert_into_dirty_component_keeps_the_debt() {
        let g: DynGraph<DynArr> = graph(6, &[(0, 1), (1, 2), (4, 5)]);
        let idx = ConnectivityIndex::from_view(&g);
        g.delete_edge(0, 1);
        idx.note_delete(0, 1);
        // Merge the dirty {0,1,2} component with clean {4,5}: the merged
        // component must remain dirty so the split at (0,1) is found.
        g.insert_edge(TimedEdge::new(2, 4, 9));
        idx.note_insert(2, 4);
        assert!(idx.is_component_dirty(4), "merged component inherits dirt");
        assert!(!idx.same_component(&g, 0, 1));
        assert!(idx.same_component(&g, 1, 4));
    }

    #[test]
    fn repair_with_external_relabeler() {
        let g: DynGraph<DynArr> = graph(5, &[(0, 1), (1, 2)]);
        let idx = ConnectivityIndex::from_view(&g);
        g.delete_edge(0, 1);
        idx.note_delete(0, 1);
        // A stand-in for the parallel relabeler: same contract, and it
        // must see exactly the component's members.
        let root = idx.repair_with(&g, 0, |view, verts| {
            assert_eq!(verts, &[0, 1, 2]);
            restricted_component_labels(view, verts)
        });
        assert_eq!(root, 0);
        assert_eq!(idx.component(&g, 2), 1);
        assert_eq!(idx.component_count(&g), 4);
    }

    #[test]
    fn rebuild_from_resets_and_counts() {
        let g: DynGraph<DynArr> = graph(4, &[(0, 1)]);
        let idx = ConnectivityIndex::from_view(&g);
        // Out-of-band mutation the index never saw:
        g.insert_edge(TimedEdge::new(2, 3, 1));
        idx.rebuild_from(&g);
        assert!(idx.same_component(&g, 2, 3));
        assert_eq!(idx.full_rebuild_count(), 1);
        assert_eq!(idx.component_count(&g), 2);
    }

    #[test]
    fn restricted_labels_match_on_closed_sets() {
        let g: DynGraph<HybridAdj> = graph(10, &[(2, 4), (4, 6), (3, 5), (8, 9)]);
        let labels = restricted_component_labels(&g, &[2, 3, 4, 5, 6]);
        assert_eq!(labels, vec![2, 3, 2, 3, 2]);
        // Edges leaving the set are ignored:
        let labels = restricted_component_labels(&g, &[4, 6]);
        assert_eq!(labels, vec![4, 4]);
    }

    #[test]
    fn concurrent_unions_converge() {
        use rayon::prelude::*;
        let n = 2048usize;
        let idx = ConnectivityIndex::new(n);
        // A path built from racing threads: whatever the interleaving,
        // the fixed point is one component labeled 0.
        (0..n as u32 - 1).into_par_iter().for_each(|i| {
            idx.note_insert(i, i + 1);
        });
        for v in 0..n as u32 {
            assert_eq!(idx.find(v), 0);
        }
        let g: DynGraph<DynArr> = graph(n, &[]);
        assert_eq!(idx.component_count(&g), 1);
    }

    #[test]
    fn concurrent_queries_with_repair_agree() {
        use rayon::prelude::*;
        // Two halves joined by a bridge; delete the bridge, then query
        // from many threads at once. Every query must see the split and
        // exactly one repair must run.
        let n = 256usize;
        let mut edges: Vec<(u32, u32)> = (0..127).map(|i| (i, i + 1)).collect();
        edges.extend((128..255).map(|i| (i, i + 1)));
        edges.push((10, 200)); // the bridge
        let g: DynGraph<DynArr> = graph(n, &edges);
        let idx = ConnectivityIndex::from_view(&g);
        assert!(idx.same_component(&g, 0, 255));
        g.delete_edge(10, 200);
        idx.note_delete(10, 200);
        (0..64u32).into_par_iter().for_each(|q| {
            let lo = q % 128;
            let hi = 128 + (q % 128);
            assert!(!idx.same_component(&g, lo, hi), "bridge is gone");
            assert!(idx.same_component(&g, lo, (lo + 1) % 128));
        });
        assert_eq!(idx.repair_count(), 1, "queries coalesce into one repair");
        assert_eq!(idx.component_count(&g), 2);
    }

    #[test]
    fn adversarial_chain_queries_flatten_and_stay_correct() {
        // Hooking high-to-low builds a deep parent chain (union by
        // min-id has no rank, and every union here touches two fresh
        // roots, so find_compress never splits anything). The read-only
        // query walk must still answer correctly and trigger the
        // opportunistic locked flatten so repeat queries are shallow.
        let n = 4096u32;
        let idx = ConnectivityIndex::new(n as usize);
        for i in (0..n - 1).rev() {
            idx.note_insert(i, i + 1);
        }
        assert_eq!(idx.find(n - 1), 0);
        assert_eq!(idx.find(n - 1), 0);
        assert_eq!(idx.find(n / 2), 0);
        let g: DynGraph<DynArr> = graph(n as usize, &[]);
        assert_eq!(idx.component_count(&g), 1);
    }

    #[test]
    fn empty_index() {
        let idx = ConnectivityIndex::new(0);
        assert!(idx.is_empty());
        let g: DynGraph<DynArr> = graph(0, &[]);
        assert_eq!(idx.component_count(&g), 0);
        assert_eq!(idx.labels(&g), Vec::<u32>::new());
    }
}
