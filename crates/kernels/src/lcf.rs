//! The link-cut forest for connectivity queries (Section 3.1).
//!
//! The paper deliberately uses the *simple* implementation of the
//! Sleator–Tarjan structure: every vertex stores one parent pointer.
//! `link`, `cut` and `parent` are O(1); `findroot` walks to the root,
//! which costs O(diameter) hops — small by construction on small-world
//! networks, so a connectivity query (two findroots) is just a couple of
//! pointer chases.
//!
//! Construction follows the paper exactly: a lock-free level-synchronous
//! parallel BFS yields the tree of the largest component, and connected
//! components seed BFS trees for the rest, producing a spanning forest.
//!
//! Queries are read-only memory walks and are processed in parallel
//! batches (Figure 8). Structural maintenance (`link_edge` on insertions,
//! `cut_with_replacement` on deletions — the latter an extension beyond
//! the paper) takes `&mut self` and runs between query phases.

use crate::bfs::{self, UNREACHED};
use rayon::prelude::*;
use snap_core::GraphView;

/// "No parent" marker: the vertex is a tree root.
pub const ROOT: u32 = u32::MAX;

/// A forest of rooted trees encoded as parent pointers.
#[derive(Clone, Debug)]
pub struct LinkCutForest {
    parent: Vec<u32>,
}

impl LinkCutForest {
    /// An n-vertex forest of singletons.
    pub fn new(n: usize) -> Self {
        Self {
            parent: vec![ROOT; n],
        }
    }

    /// Builds the spanning forest of any [`GraphView`] via parallel BFS
    /// per component (largest components dominate and parallelize well;
    /// the stragglers are tiny by the small-world degree skew).
    pub fn from_view<V: GraphView>(view: &V) -> Self {
        let n = view.num_vertices();
        let mut parent = vec![ROOT; n];
        let mut visited = vec![false; n];
        if n == 0 {
            return Self { parent };
        }
        // Giant component first: parallel BFS from the max-degree vertex
        // (on R-MAT graphs that vertex sits in the giant component).
        let first = (0..n as u32).max_by_key(|&u| view.degree(u)).unwrap_or(0);
        let res = bfs::bfs(view, first);
        for v in 0..n {
            if res.dist[v] != UNREACHED {
                visited[v] = true;
                if res.parent[v] != UNREACHED {
                    parent[v] = res.parent[v];
                }
            }
        }
        // Remaining components are small by the power-law skew: sweep a
        // forward-only cursor and run a cheap sequential traversal per
        // component (total cost O(n + m), no per-component allocations).
        let mut stack: Vec<u32> = Vec::new();
        for s in 0..n as u32 {
            if visited[s as usize] {
                continue;
            }
            visited[s as usize] = true;
            stack.push(s);
            while let Some(v) = stack.pop() {
                view.for_each_edge(v, |w, _| {
                    if !visited[w as usize] {
                        visited[w as usize] = true;
                        parent[w as usize] = v;
                        stack.push(w);
                    }
                });
            }
        }
        Self { parent }
    }

    /// [`LinkCutForest::from_view`] under its historical name (every
    /// snapshot is a view).
    pub fn from_csr<V: GraphView>(view: &V) -> Self {
        Self::from_view(view)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.parent.len()
    }

    /// The parent of `v`, or [`ROOT`].
    #[inline]
    pub fn parent(&self, v: u32) -> u32 {
        self.parent[v as usize]
    }

    /// Walks parent pointers to the root of `v`'s tree — O(tree height).
    #[inline]
    pub fn findroot(&self, v: u32) -> u32 {
        let mut cur = v;
        loop {
            let p = self.parent[cur as usize];
            if p == ROOT {
                return cur;
            }
            cur = p;
        }
    }

    /// Hop count from `v` to its root (diagnostics: the paper's query cost
    /// is proportional to this).
    pub fn depth(&self, v: u32) -> u32 {
        let mut cur = v;
        let mut d = 0;
        while self.parent[cur as usize] != ROOT {
            cur = self.parent[cur as usize];
            d += 1;
        }
        d
    }

    /// Connectivity query: are `u` and `v` in the same tree?
    #[inline]
    pub fn connected(&self, u: u32, v: u32) -> bool {
        self.findroot(u) == self.findroot(v)
    }

    /// Processes a batch of connectivity queries in parallel (queries only
    /// read, so they need no synchronization) — the Figure 8 workload.
    pub fn connected_batch(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        pairs
            .par_iter()
            .map(|&(u, v)| self.connected(u, v))
            .collect()
    }

    /// Structural `link(v, w)`: makes `w` the parent of root `v`.
    ///
    /// # Panics
    /// If `v` is not a root (the Sleator–Tarjan precondition).
    pub fn link(&mut self, v: u32, w: u32) {
        assert_eq!(
            self.parent[v as usize], ROOT,
            "link requires v to be a root"
        );
        self.parent[v as usize] = w;
    }

    /// Structural `cut(v)`: deletes the arc from `v` to its parent,
    /// splitting the tree. No-op if `v` is a root.
    pub fn cut(&mut self, v: u32) {
        self.parent[v as usize] = ROOT;
    }

    /// Reroots `v`'s tree at `v` by reversing the path to the old root —
    /// O(depth), needed before linking two arbitrary vertices.
    pub fn reroot(&mut self, v: u32) {
        let mut prev = ROOT;
        let mut cur = v;
        while cur != ROOT {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = prev;
            prev = cur;
            cur = next;
        }
    }

    /// Maintains the forest across an edge insertion: if `(u, v)` connects
    /// two trees it becomes a tree edge (reroot + link) and `true` is
    /// returned; otherwise it is a non-tree edge and the forest is
    /// untouched.
    pub fn link_edge(&mut self, u: u32, v: u32) -> bool {
        if self.connected(u, v) {
            return false;
        }
        self.reroot(u);
        self.link(u, v);
        true
    }

    /// Maintains the forest across the deletion of edge `(u, v)`
    /// *(extension beyond the paper)*: if `(u, v)` is a tree edge, cut it
    /// and search the remaining graph (`view`, which must already exclude
    /// the deleted edge — a live [`snap_core::DynGraph`] right after the
    /// delete works directly) for a replacement edge reconnecting the
    /// halves. Returns `true` if the components stayed connected.
    pub fn cut_with_replacement<V: GraphView>(&mut self, view: &V, u: u32, v: u32) -> bool {
        let child = if self.parent[u as usize] == v {
            u
        } else if self.parent[v as usize] == u {
            v
        } else {
            // Not a tree edge: connectivity is unaffected.
            return true;
        };
        self.cut(child);
        // BFS the child's side of the split in the updated graph; the first
        // edge leaving the side is a replacement.
        let side_root = self.findroot(child);
        let res = bfs::bfs(view, child);
        let n = view.num_vertices();
        let mut replacement = None;
        'outer: for x in 0..n as u32 {
            if res.dist[x as usize] == UNREACHED {
                continue;
            }
            if self.findroot(x) != side_root {
                // x is reachable from child in the graph but sits in the
                // other tree — BFS crossed the split via some path. Walk
                // x's BFS parents to find the crossing edge.
                let mut cur = x;
                while res.parent[cur as usize] != UNREACHED {
                    let p = res.parent[cur as usize];
                    if self.findroot(p) == side_root {
                        replacement = Some((cur, p));
                        break 'outer;
                    }
                    cur = p;
                }
            }
        }
        if let Some((a, b)) = replacement {
            self.reroot(b);
            self.link(b, a);
            true
        } else {
            false
        }
    }

    /// Mean and max depth over all vertices (query-cost diagnostics).
    pub fn depth_stats(&self) -> (f64, u32) {
        let n = self.parent.len();
        let depths: Vec<u32> = (0..n as u32)
            .into_par_iter()
            .map(|v| self.depth(v))
            .collect();
        let max = depths.iter().copied().max().unwrap_or(0);
        let mean = depths.iter().map(|&d| d as f64).sum::<f64>() / n.max(1) as f64;
        (mean, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{connected_components, union_find_components};
    use snap_core::CsrGraph;
    use snap_rmat::{Rmat, RmatParams, TimedEdge};

    fn path_graph(k: u32) -> CsrGraph {
        let edges: Vec<TimedEdge> = (0..k - 1).map(|i| TimedEdge::new(i, i + 1, 1)).collect();
        CsrGraph::from_edges_undirected(k as usize, &edges)
    }

    #[test]
    fn construction_matches_components() {
        let rm = Rmat::new(RmatParams::paper(10, 4), 9);
        let g = CsrGraph::from_edges_undirected(1 << 10, &rm.edges());
        let f = LinkCutForest::from_csr(&g);
        let labels = connected_components(&g);
        for u in (0..1u32 << 10).step_by(7) {
            for v in (0..1u32 << 10).step_by(11) {
                assert_eq!(
                    f.connected(u, v),
                    labels[u as usize] == labels[v as usize],
                    "forest connectivity differs from components for ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn forest_has_one_root_per_component() {
        let rm = Rmat::new(RmatParams::paper(9, 4), 10);
        let g = CsrGraph::from_edges_undirected(1 << 9, &rm.edges());
        let f = LinkCutForest::from_csr(&g);
        let labels = connected_components(&g);
        let comp_count = crate::cc::component_count(&labels);
        let roots = (0..f.num_vertices() as u32)
            .filter(|&v| f.parent(v) == ROOT)
            .count();
        assert_eq!(roots, comp_count);
    }

    #[test]
    fn findroot_and_depth_on_path() {
        let g = path_graph(50);
        let f = LinkCutForest::from_csr(&g);
        let r0 = f.findroot(0);
        assert!((0..50u32).all(|v| f.findroot(v) == r0));
        let (_, max) = f.depth_stats();
        assert!(max <= 49);
    }

    #[test]
    fn link_and_cut_roundtrip() {
        let mut f = LinkCutForest::new(4);
        assert!(!f.connected(0, 1));
        f.link(0, 1);
        assert!(f.connected(0, 1));
        f.link(2, 1);
        assert!(f.connected(0, 2));
        f.cut(0);
        assert!(!f.connected(0, 2));
        assert!(f.connected(1, 2));
    }

    #[test]
    #[should_panic(expected = "link requires v to be a root")]
    fn link_non_root_panics() {
        let mut f = LinkCutForest::new(3);
        f.link(0, 1);
        f.link(0, 2);
    }

    #[test]
    fn reroot_preserves_connectivity_and_makes_root() {
        let g = path_graph(20);
        let mut f = LinkCutForest::from_csr(&g);
        f.reroot(7);
        assert_eq!(f.findroot(0), 7);
        assert_eq!(f.parent(7), ROOT);
        assert!((0..20u32).all(|v| f.findroot(v) == 7));
    }

    #[test]
    fn link_edge_distinguishes_tree_and_nontree() {
        let mut f = LinkCutForest::new(4);
        assert!(f.link_edge(0, 1), "first edge joins two singletons");
        assert!(f.link_edge(2, 1));
        assert!(
            !f.link_edge(0, 2),
            "0 and 2 already connected: non-tree edge"
        );
        assert!(f.link_edge(3, 0));
        assert!(f.connected(3, 2));
    }

    #[test]
    fn incremental_links_match_union_find() {
        let rm = Rmat::new(RmatParams::paper(9, 2), 12);
        let edges = rm.edges();
        let n = 1 << 9;
        let mut f = LinkCutForest::new(n);
        for e in &edges {
            if e.u != e.v {
                f.link_edge(e.u, e.v);
            }
        }
        let oracle = union_find_components(n, edges.iter().map(|e| (e.u, e.v)));
        for u in (0..n as u32).step_by(5) {
            for v in (0..n as u32).step_by(13) {
                assert_eq!(
                    f.connected(u, v),
                    oracle[u as usize] == oracle[v as usize],
                    "({u},{v})"
                );
            }
        }
    }

    #[test]
    fn cut_with_replacement_reconnects_cycle() {
        // Cycle 0-1-2-3-0: cutting any tree edge must find the replacement.
        let edges = vec![
            TimedEdge::new(0, 1, 1),
            TimedEdge::new(1, 2, 1),
            TimedEdge::new(2, 3, 1),
            TimedEdge::new(3, 0, 1),
        ];
        let g = CsrGraph::from_edges_undirected(4, &edges);
        let mut f = LinkCutForest::from_csr(&g);
        // Find a tree edge to delete: some (v, parent(v)).
        let v = (0..4u32).find(|&v| f.parent(v) != ROOT).unwrap();
        let p = f.parent(v);
        // Updated graph without (v, p).
        let remaining: Vec<TimedEdge> = edges
            .iter()
            .copied()
            .filter(|e| !((e.u == v && e.v == p) || (e.u == p && e.v == v)))
            .collect();
        let g2 = CsrGraph::from_edges_undirected(4, &remaining);
        assert!(
            f.cut_with_replacement(&g2, v, p),
            "cycle keeps connectivity"
        );
        assert!((0..4u32).all(|x| f.connected(0, x)));
    }

    #[test]
    fn cut_with_replacement_reports_disconnection() {
        let g = path_graph(6);
        let mut f = LinkCutForest::from_csr(&g);
        // Remove the middle edge 2-3 from both graph and forest.
        let remaining: Vec<TimedEdge> = (0..5u32)
            .filter(|&i| i != 2)
            .map(|i| TimedEdge::new(i, i + 1, 1))
            .collect();
        let g2 = CsrGraph::from_edges_undirected(6, &remaining);
        assert!(!f.cut_with_replacement(&g2, 2, 3), "path splits for good");
        assert!(!f.connected(0, 5));
        assert!(f.connected(0, 2));
        assert!(f.connected(3, 5));
    }

    #[test]
    fn batch_queries_match_single_queries() {
        let rm = Rmat::new(RmatParams::paper(9, 4), 14);
        let g = CsrGraph::from_edges_undirected(1 << 9, &rm.edges());
        let f = LinkCutForest::from_csr(&g);
        let pairs: Vec<(u32, u32)> = (0..200u32).map(|i| (i * 2 % 512, i * 7 % 512)).collect();
        let batch = f.connected_batch(&pairs);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            assert_eq!(batch[i], f.connected(u, v));
        }
    }
}
