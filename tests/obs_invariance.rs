//! Invariant 9: instrumentation must never change kernel or serving
//! results.
//!
//! This suite runs identically with and without `--features obs` (CI
//! builds both), so the assertions pin bit-equality of every
//! instrumented path against its uninstrumented serial oracle in both
//! feature states. The scrape-side assertions are conditioned on
//! `snap::obs::ENABLED`: live counters when the runtime is compiled
//! in, empty expositions when it is compiled out.

use snap::obs::{MetricValue, MetricsRegistry};
use snap::prelude::*;

fn scrape(name: &str) -> Option<MetricValue> {
    MetricsRegistry::global()
        .snapshot()
        .into_iter()
        .find(|m| m.name == name)
        .map(|m| m.value)
}

fn counter_value(name: &str) -> u64 {
    match scrape(name) {
        Some(MetricValue::Counter(v)) => v,
        other => panic!("expected counter {name}, got {other:?}"),
    }
}

/// Kernels run with instrumentation live are bit-identical to the
/// serial oracles, and the registry observes the runs exactly when the
/// feature is on.
#[test]
fn instrumented_kernels_match_serial_oracles() {
    let rmat = Rmat::new(RmatParams::paper(10, 8), 77);
    let edges = rmat.edges();
    let n = 1 << 10;
    let hints = CapacityHints::new(edges.len() * 2);
    let g = DynGraph::<HybridAdj>::undirected(n, &hints);
    for u in StreamBuilder::new(&edges, 1).construction_shuffled().iter() {
        g.apply(u);
    }
    let csr = g.to_csr();
    // Force the parallel path so the instrumented runtime actually runs.
    let cfg = ParConfig::default()
        .with_serial_threshold(0)
        .with_threads(2);

    let par = snap::par::par_bfs_with(&csr, 0, &cfg);
    let ser = bfs(&csr, 0);
    assert_eq!(par.dist, ser.dist, "BFS distances bit-identical");

    let (par_labels, stats) = snap::par::par_cc_stats(&csr, &cfg);
    assert_eq!(
        par_labels,
        connected_components(&csr),
        "CC labels bit-identical"
    );
    assert!(stats.levels() > 0, "the runtime really ran");

    let par_dist = snap::par::par_sssp_with(&csr, 0, 4, &cfg);
    assert_eq!(
        par_dist,
        delta_stepping(&csr, 0, 4),
        "SSSP distances bit-identical"
    );

    if snap::obs::ENABLED {
        assert!(
            counter_value("snap_par_runs_total") >= 3,
            "every kernel invocation lands in the registry"
        );
        assert!(counter_value("snap_par_edges_scanned_total") > 0);
    } else {
        assert!(
            MetricsRegistry::global().snapshot().is_empty(),
            "no-op registry scrapes empty"
        );
    }
}

/// The instrumented serve path (queue gauge, phase timers, publication
/// stamps, sampled query latency) publishes the same versions and
/// labels as ever, and the scrape surfaces agree with the engine's own
/// counters when the feature is on.
#[test]
fn instrumented_serving_results_are_unchanged() {
    let hints = CapacityHints::new(256);
    let g = DynGraph::<HybridAdj>::undirected(32, &hints);
    let engine = ServeEngine::new(g, ServeConfig::default().with_shards(2).with_coalesce(1));
    for i in 0..16u32 {
        engine.submit(vec![Update::insert(TimedEdge::new(
            i % 8,
            (i + 1) % 8,
            i + 1,
        ))]);
    }
    engine.submit(vec![Update::delete(TimedEdge::new(3, 4, 0))]);
    engine.flush();

    // Results: identical to a bulk-synchronous oracle of the stream.
    let v = engine.pin();
    let oracle = DynGraph::<HybridAdj>::undirected(32, &hints);
    for i in 0..16u32 {
        oracle.apply(&Update::insert(TimedEdge::new(i % 8, (i + 1) % 8, i + 1)));
    }
    oracle.apply(&Update::delete(TimedEdge::new(3, 4, 0)));
    let oracle_csr = oracle.to_csr();
    assert_eq!(v.num_entries(), oracle_csr.num_entries());
    let labels = v.component_labels().expect("connectivity on");
    assert_eq!(**labels, connected_components(&oracle_csr));
    for _ in 0..200 {
        // Hammer the sampled query path: results never vary.
        assert_eq!(engine.same_component(0, 1), labels[0] == labels[1]);
    }
    assert_eq!(engine.full_rebuild_count(), Some(0));

    if snap::obs::ENABLED {
        assert!(counter_value("snap_serve_epochs_published_total") >= 17);
        assert!(counter_value("snap_serve_queries_total") >= 200);
        assert!(counter_value("snap_conn_dirty_marks_total") >= 1);
        assert!(counter_value("snap_conn_repairs_total") >= 1);
        assert_eq!(counter_value("snap_conn_full_rebuilds_total"), 0);
        let text = MetricsRegistry::global().render_text();
        assert!(text.contains("# TYPE snap_serve_queue_depth gauge"));
        assert!(text.contains("snap_serve_publish_lag_ns_count"));
        let json = MetricsRegistry::global().render_json();
        assert!(json.contains("snap_serve_apply_ns"));
    } else {
        assert_eq!(MetricsRegistry::global().render_text(), "");
        assert_eq!(MetricsRegistry::global().render_json(), "[]\n");
        assert!(MetricsRegistry::global().serve_http("127.0.0.1:0").is_err());
    }
}

/// With the feature on, the `/metrics` endpoint serves the text
/// exposition over plain TCP (the `serve` subcommand wires this up via
/// SNAP_METRICS_ADDR).
#[test]
fn metrics_endpoint_serves_text_when_enabled() {
    if !snap::obs::ENABLED {
        return;
    }
    use std::io::{Read, Write};
    MetricsRegistry::global()
        .counter("endpoint_probe_total", "probe")
        .inc();
    let srv = MetricsRegistry::global()
        .serve_http("127.0.0.1:0")
        .expect("bind ephemeral port");
    let mut s = std::net::TcpStream::connect(srv.addr()).expect("connect");
    s.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 200 OK"));
    assert!(resp.contains("endpoint_probe_total 1"));
    srv.shutdown();
}
