//! Parallel connected components: Shiloach–Vishkin label propagation
//! with pointer jumping, executed over real worker threads.
//!
//! The algorithm matches the serial kernel in `snap_kernels::cc` —
//! alternate *grafting* (hook a vertex's label chain under any smaller
//! label seen across an edge) and *shortcutting* (pointer-jump every
//! label to its chain's root) until a fixed point. Labels only ever
//! decrease and every intermediate label names a vertex inside the same
//! component, so the fixed point is the component's minimum vertex id:
//! the output is canonical and comparable with the serial kernel
//! bit-for-bit, at any thread count.
//!
//! Work distribution: the vertex id space is cut into
//! [`GraphView::vertex_chunks`] ranges and both phases run through
//! [`crate::frontier::par_for_ranges`] — dynamic chunk self-scheduling,
//! so a range hiding a power-law hub delays one chunk, not one thread's
//! entire static share. The input view must be symmetric (undirected),
//! as for the serial kernel.

use crate::frontier::{par_for_ranges, sweep_grain};
use crate::ParConfig;
use snap_core::GraphView;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Parallel connected components with the default [`ParConfig`].
/// Returns the canonical min-id label per vertex.
pub fn par_cc<V: GraphView>(view: &V) -> Vec<u32> {
    par_cc_with(view, &ParConfig::default())
}

/// Parallel connected components under an explicit configuration.
pub fn par_cc_with<V: GraphView>(view: &V, cfg: &ParConfig) -> Vec<u32> {
    let n = view.num_vertices();
    if n + view.num_entries() <= cfg.serial_threshold {
        return snap_kernels::connected_components(view);
    }
    let threads = cfg.worker_count();
    let ranges: Vec<Range<u32>> = view.vertex_chunks(sweep_grain(n, threads)).collect();
    let label: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let changed = AtomicBool::new(true);
    while changed.swap(false, Ordering::Relaxed) {
        // Graft: relaxed racy hooking is convergent — the outer loop
        // re-checks until a fixed point and labels only decrease.
        par_for_ranges(&ranges, threads, |r| {
            for u in r {
                let lu = label[u as usize].load(Ordering::Relaxed);
                view.for_each_edge(u, |v, _| {
                    let lv = label[v as usize].load(Ordering::Relaxed);
                    if lv < lu {
                        if try_lower(&label, u, lv) {
                            changed.store(true, Ordering::Relaxed);
                        }
                    } else if lu < lv && try_lower(&label, v, lu) {
                        changed.store(true, Ordering::Relaxed);
                    }
                });
            }
        });
        // Shortcut: pointer-jump every label chain to its root.
        par_for_ranges(&ranges, threads, |r| {
            for u in r {
                let mut l = label[u as usize].load(Ordering::Relaxed);
                loop {
                    let ll = label[l as usize].load(Ordering::Relaxed);
                    if ll == l {
                        break;
                    }
                    l = ll;
                }
                label[u as usize].store(l, Ordering::Relaxed);
            }
        });
    }
    label.into_iter().map(|l| l.into_inner()).collect()
}

/// CAS-lowers `x`'s label to `to` if smaller; true if changed.
fn try_lower(label: &[AtomicU32], x: u32, to: u32) -> bool {
    let mut cur = label[x as usize].load(Ordering::Relaxed);
    while to < cur {
        match label[x as usize].compare_exchange_weak(cur, to, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_core::CsrGraph;
    use snap_kernels::cc::union_find_components;
    use snap_kernels::{component_count, connected_components};
    use snap_rmat::{Rmat, RmatParams, TimedEdge};

    fn force() -> ParConfig {
        ParConfig::default()
            .with_serial_threshold(0)
            .with_threads(4)
    }

    #[test]
    fn matches_serial_kernel_and_union_find_on_rmat() {
        let rm = Rmat::new(RmatParams::paper(11, 4), 17);
        let edges = rm.edges();
        let g = CsrGraph::from_edges_undirected(1 << 11, &edges);
        let par = par_cc_with(&g, &force());
        assert_eq!(par, connected_components(&g));
        assert_eq!(
            par,
            union_find_components(1 << 11, edges.iter().map(|e| (e.u, e.v)))
        );
    }

    #[test]
    fn long_path_converges_to_min_label() {
        let edges: Vec<TimedEdge> = (0..1999).map(|i| TimedEdge::new(i, i + 1, 1)).collect();
        let g = CsrGraph::from_edges_undirected(2000, &edges);
        let labels = par_cc_with(&g, &force());
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn components_and_isolates() {
        let edges = vec![
            TimedEdge::new(0, 1, 1),
            TimedEdge::new(1, 2, 1),
            TimedEdge::new(5, 6, 1),
        ];
        let g = CsrGraph::from_edges_undirected(8, &edges);
        let labels = par_cc_with(&g, &force());
        assert_eq!(labels, vec![0, 0, 0, 3, 4, 5, 5, 7]);
        assert_eq!(component_count(&labels), 5);
    }

    #[test]
    fn small_graph_falls_back_to_serial() {
        let g = CsrGraph::from_edges_undirected(4, &[TimedEdge::new(1, 2, 1)]);
        assert_eq!(par_cc(&g), connected_components(&g));
    }
}
