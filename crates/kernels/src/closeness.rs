//! Closeness centrality, exact and sampled (Eppstein–Wang style).
//!
//! The paper names closeness alongside stress and betweenness as the
//! standard centrality indices (Section 3.4). Closeness of `v` is the
//! inverse of its average distance to the vertices it can reach; on
//! disconnected graphs we use the Wasserman–Faust component correction
//! `c(v) = (r-1)^2 / ((n-1) * sum_d)` where `r` is the size of `v`'s
//! reachable set.
//!
//! Exact computation is one BFS per vertex (parallelized over sources);
//! the sampled estimator averages distances *from* `k` sampled sources,
//! which on (near-)undirected graphs estimates every vertex's average
//! distance in `O(k * m)`.

use crate::bfs::{serial_bfs, UNREACHED};
use rayon::prelude::*;
use snap_core::GraphView;

/// Exact closeness for every vertex (one BFS per vertex — quadratic; use
/// on moderate snapshots or prefer [`closeness_approx`]).
pub fn closeness_exact<V: GraphView>(view: &V) -> Vec<f64> {
    let n = view.num_vertices();
    (0..n as u32)
        .into_par_iter()
        .map(|s| {
            let d = serial_bfs(view, s);
            let mut sum = 0u64;
            let mut reach = 0u64;
            for &dist in &d.dist {
                if dist != UNREACHED {
                    sum += dist as u64;
                    reach += 1;
                }
            }
            // reach includes s itself (distance 0).
            if reach <= 1 || sum == 0 {
                return 0.0;
            }
            let r = reach as f64;
            ((r - 1.0) * (r - 1.0)) / ((n as f64 - 1.0) * sum as f64)
        })
        .collect()
}

/// Sampled closeness: estimates every vertex's total distance from `k`
/// sampled sources, extrapolated by `n / k`. On undirected graphs
/// `d(s, v) = d(v, s)`, so source-side BFS trees estimate all vertices at
/// once. Vertices unreached by every sample get closeness 0.
pub fn closeness_approx<V: GraphView>(view: &V, sources: &[u32]) -> Vec<f64> {
    let n = view.num_vertices();
    if sources.is_empty() {
        return vec![0.0; n];
    }
    // Per-source distance accumulation (sum and count), reduced pairwise.
    let (sums, counts) = sources
        .par_iter()
        .fold(
            || (vec![0u64; n], vec![0u32; n]),
            |(mut sums, mut counts), &s| {
                let d = serial_bfs(view, s);
                for v in 0..n {
                    // Skip the source itself (distance 0): the estimator
                    // targets the mean distance to *other* vertices.
                    if d.dist[v] != UNREACHED && d.dist[v] > 0 {
                        sums[v] += d.dist[v] as u64;
                        counts[v] += 1;
                    }
                }
                (sums, counts)
            },
        )
        .reduce(
            || (vec![0u64; n], vec![0u32; n]),
            |(mut a, mut ac), (b, bc)| {
                for i in 0..n {
                    a[i] += b[i];
                    ac[i] += bc[i];
                }
                (a, ac)
            },
        );
    let k = sources.len() as f64;
    (0..n)
        .map(|v| {
            if counts[v] == 0 || sums[v] == 0 {
                return 0.0;
            }
            // counts/k estimates (r-1)/n where r is v's reachable-set
            // size; the sampled mean extrapolates to the total distance.
            let est_r_minus_1 = counts[v] as f64 / k * n as f64;
            let est_sum = sums[v] as f64 / counts[v] as f64 * est_r_minus_1;
            (est_r_minus_1 * est_r_minus_1) / ((n as f64 - 1.0) * est_sum)
        })
        .collect()
}

/// Harmonic centrality: `sum over reachable t of 1 / d(v, t)` — the
/// variant that needs no component correction.
pub fn harmonic_exact<V: GraphView>(view: &V) -> Vec<f64> {
    let n = view.num_vertices();
    (0..n as u32)
        .into_par_iter()
        .map(|s| {
            let d = serial_bfs(view, s);
            d.dist
                .iter()
                .filter(|&&x| x != UNREACHED && x > 0)
                .map(|&x| 1.0 / x as f64)
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_core::CsrGraph;
    use snap_rmat::{Rmat, RmatParams, TimedEdge};

    fn undirected(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
        let e: Vec<TimedEdge> = edges
            .iter()
            .map(|&(u, v)| TimedEdge::new(u, v, 1))
            .collect();
        CsrGraph::from_edges_undirected(n, &e)
    }

    #[test]
    fn star_center_has_highest_closeness() {
        let g = undirected(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let c = closeness_exact(&g);
        for v in 1..5 {
            assert!(c[0] > c[v], "center must dominate leaf {v}");
        }
        // Center: sum = 4, r = 5 -> (4*4)/(4*4) = 1.0 (maximal).
        assert!((c[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn path_ends_have_lowest_closeness() {
        let g = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let c = closeness_exact(&g);
        assert!(c[2] > c[1] && c[2] > c[3]);
        assert!(c[1] > c[0] && c[3] > c[4]);
        assert!((c[0] - c[4]).abs() < 1e-12, "symmetric ends");
    }

    #[test]
    fn isolated_vertex_zero() {
        let g = undirected(3, &[(0, 1)]);
        let c = closeness_exact(&g);
        assert_eq!(c[2], 0.0);
    }

    #[test]
    fn component_correction_penalizes_small_components() {
        // Two components: K3 and K2. K3 members reach 2 others at dist 1;
        // K2 members reach 1 other at dist 1.
        let g = undirected(5, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let c = closeness_exact(&g);
        // K3: (2*2)/(4*2) = 0.5 ; K2: (1*1)/(4*1) = 0.25.
        assert!((c[0] - 0.5).abs() < 1e-9);
        assert!((c[3] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn approx_with_all_sources_matches_exact_on_connected_graph() {
        // A connected small-world instance: take the giant component only
        // by linking everything into a ring first.
        let mut edges: Vec<(u32, u32)> = (0..64).map(|i| (i, (i + 1) % 64)).collect();
        edges.extend([(0, 32), (16, 48), (8, 40)]);
        let g = undirected(64, &edges);
        let exact = closeness_exact(&g);
        let all: Vec<u32> = (0..64).collect();
        let approx = closeness_approx(&g, &all);
        for v in 0..64 {
            assert!(
                (exact[v] - approx[v]).abs() < 1e-9,
                "v {v}: exact {} vs approx {}",
                exact[v],
                approx[v]
            );
        }
    }

    #[test]
    fn approx_ranks_hub_first_on_rmat() {
        let rm = Rmat::new(RmatParams::paper(9, 8), 3);
        let g = CsrGraph::from_edges_undirected(1 << 9, &rm.edges());
        let exact = closeness_exact(&g);
        let sources: Vec<u32> = (0..(1 << 9)).step_by(4).collect();
        let approx = closeness_approx(&g, &sources);
        let top_exact = (0..1usize << 9)
            .max_by(|&a, &b| exact[a].total_cmp(&exact[b]))
            .unwrap();
        let better = (0..1usize << 9)
            .filter(|&v| approx[v] > approx[top_exact])
            .count();
        assert!(better <= 10, "exact top vertex ranked {better} by approx");
    }

    #[test]
    fn harmonic_on_path() {
        let g = undirected(3, &[(0, 1), (1, 2)]);
        let h = harmonic_exact(&g);
        assert!((h[1] - 2.0).abs() < 1e-9); // 1/1 + 1/1
        assert!((h[0] - 1.5).abs() < 1e-9); // 1/1 + 1/2
    }

    #[test]
    fn empty_sources_yield_zeroes() {
        let g = undirected(4, &[(0, 1)]);
        assert_eq!(closeness_approx(&g, &[]), vec![0.0; 4]);
    }
}
