//! Figure 10: level-synchronous BFS with a timestamp check on the largest
//! instance, from the max-degree vertex of the giant component.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use snap_bench::build_edges;
use snap_core::CsrGraph;
use snap_kernels::temporal_bfs;

fn bench(c: &mut Criterion) {
    let scale = 16u32;
    let n = 1usize << scale;
    let edges = build_edges(scale, 8, 10);
    let csr = CsrGraph::from_edges_undirected(n, &edges);
    let src = (0..n as u32)
        .max_by_key(|&u| csr.out_degree(u))
        .unwrap_or(0);
    let mut g = c.benchmark_group("fig10_temporal_bfs");
    g.sample_size(10);
    g.throughput(Throughput::Elements(csr.num_entries() as u64));
    g.bench_function("timestamp_checked_bfs", |b| {
        b.iter(|| temporal_bfs(&csr, src, |ts| ts >= 1));
    });
    g.bench_function("window_filtered_bfs", |b| {
        b.iter(|| temporal_bfs(&csr, src, |ts| ts > 20 && ts < 70));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
