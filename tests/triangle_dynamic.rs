//! Incremental triangle counting under mixed update streams: the
//! [`TriangleIndex`] differentially checked against the kernels-side
//! recount (per-vertex counts, global count, and the clustering
//! coefficient to the bit), through the reusable harness
//! (`common::differential`).
//!
//! Every insert and delete must be absorbed as an O(min-degree) delta;
//! the harness's zero-full-rebuild assertion pins that no recount ever
//! happened on the incremental path.

mod common;

use common::differential::{rmat_workload, run_differential, Strategy, TriPair};
use snap::prelude::*;
use snap::util::thread_pool;

const SUITE: u64 = 0x7121A;

#[test]
fn index_tracks_the_recount_across_strategies_and_threads() {
    for case in 0..2 {
        let w = rmat_workload(SUITE, case, 9, 3, 40, 256);
        for threads in [1usize, 2, 8] {
            run_differential::<DynArr, _, _>(&w, Strategy::Stream, threads, TriPair::new);
            run_differential::<HybridAdj, _, _>(&w, Strategy::Vpart, threads, TriPair::new);
            run_differential::<TreapAdj, _, _>(&w, Strategy::Epart, threads, TriPair::new);
        }
    }
}

#[test]
fn deletion_heavy_streams_stay_on_the_delta_path() {
    for case in 0..2 {
        let w = rmat_workload(SUITE, 10 + case, 9, 3, 60, 128);
        for threads in [1usize, 2, 8] {
            run_differential::<HybridAdj, _, _>(&w, Strategy::Vpart, threads, TriPair::new);
        }
    }
}

#[test]
fn manager_queries_agree_with_the_kernels_oracle() {
    for case in 0..2 {
        let w = rmat_workload(SUITE, 20 + case, 9, 3, 50, 256);
        let n = w.n as usize;
        for &threads in &[1usize, 2, 8] {
            let hints = CapacityHints::new(w.len() * 2);
            let mgr = SnapshotManager::new(DynGraph::<HybridAdj>::undirected(n, &hints));
            mgr.enable_triangles();
            thread_pool(threads).install(|| {
                for batch in &w.batches {
                    mgr.apply_batch(batch);
                }
            });
            let per = snap_kernels::triangles_per_vertex(mgr.live());
            for (u, &want) in per.iter().enumerate() {
                assert_eq!(mgr.triangles_of(u as u32), want, "vertex {u}");
            }
            assert_eq!(mgr.triangle_count(), per.iter().sum::<u64>() / 3);
            assert_eq!(
                mgr.average_clustering().to_bits(),
                average_clustering(mgr.live()).to_bits(),
                "clustering must match the kernel bit-for-bit"
            );
            let idx = mgr.triangle_index().unwrap();
            assert_eq!(mgr.rebuild_count(), 0, "no CSR rebuild");
            assert_eq!(idx.full_rebuild_count(), 0, "no recount");
            assert!(idx.delta_count() >= w.len() / 2, "deltas did the work");
        }
    }
}
