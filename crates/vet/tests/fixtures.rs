//! Fixture tests for the snap-vet scanner: one violating and one clean
//! fixture per rule, plus the self-check that the committed workspace
//! passes with zero violations (which is what makes the CI gate
//! meaningful — the tool is tested against the code it guards).

use snap_vet::registry::Registry;
use snap_vet::scan_source;

/// Rules fired by `src`, scanned as non-test library code.
fn rules_for(src: &str) -> Vec<&'static str> {
    let reg = Registry::default();
    scan_source("crates/core/src/fixture.rs", src, &reg)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

/// Rules fired by `src` under a whole-file test context path.
fn rules_for_test_file(src: &str) -> Vec<&'static str> {
    let reg = Registry::default();
    scan_source("tests/fixture.rs", src, &reg)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

// --- unsafe-needs-safety -------------------------------------------------

#[test]
fn unsafe_without_safety_comment_is_flagged() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    assert_eq!(rules_for(src), vec!["unsafe-needs-safety"]);
}

#[test]
fn unsafe_with_safety_comment_above_is_clean() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
    assert_eq!(rules_for(src), Vec::<&str>::new());
}

#[test]
fn safety_marker_covers_multiline_statements() {
    // The marker sits on the first line of the statement; the `unsafe`
    // appears two lines later, still within the same statement.
    let src = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    let x = Some(p)\n        .map(|p| unsafe { *p })\n        .unwrap_or(0);\n    x\n}\n";
    assert_eq!(rules_for(src), Vec::<&str>::new());
}

#[test]
fn unsafe_in_string_literal_is_not_flagged() {
    let src = "pub fn f() -> &'static str {\n    \"unsafe unsafe unsafe\"\n}\n";
    assert_eq!(rules_for(src), Vec::<&str>::new());
}

// --- ordering-needs-note -------------------------------------------------

#[test]
fn bare_ordering_site_is_flagged() {
    let src = "fn f(a: &AtomicUsize) -> usize {\n    a.load(Ordering::Acquire)\n}\n";
    assert_eq!(rules_for(src), vec!["ordering-needs-note"]);
}

#[test]
fn ordering_with_note_is_clean() {
    let src = "fn f(a: &AtomicUsize) -> usize {\n    // ordering: Acquire — pairs with the Release publish (invariant 1).\n    a.load(Ordering::Acquire)\n}\n";
    assert_eq!(rules_for(src), Vec::<&str>::new());
}

#[test]
fn ordering_rule_applies_inside_test_modules_too() {
    // Ordering notes are required even in tests: a test encoding the
    // wrong ordering documents the wrong protocol.
    let src = "#[cfg(test)]\nmod tests {\n    fn f(a: &AtomicUsize) -> usize {\n        a.load(Ordering::Relaxed)\n    }\n}\n";
    assert_eq!(rules_for(src), vec!["ordering-needs-note"]);
}

#[test]
fn non_atomic_ordering_paths_are_ignored() {
    // `cmp::Ordering` variants must not trip the atomic rule.
    let src = "fn f(a: u32, b: u32) -> Ordering {\n    if a < b { Ordering::Less } else { Ordering::Greater }\n}\n";
    assert_eq!(rules_for(src), Vec::<&str>::new());
}

// --- unwrap-needs-note ---------------------------------------------------

#[test]
fn bare_unwrap_in_library_code_is_flagged() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert_eq!(rules_for(src), vec!["unwrap-needs-note"]);
}

#[test]
fn expect_with_panics_note_is_clean() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // panics: unreachable — the caller checked is_some().\n    x.expect(\"checked above\")\n}\n";
    assert_eq!(rules_for(src), Vec::<&str>::new());
}

#[test]
fn unwrap_is_exempt_in_test_context() {
    let bare = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    // Whole-file test context (tests/ dir)...
    assert_eq!(rules_for_test_file(bare), Vec::<&str>::new());
    // ...and #[cfg(test)] modules inside library files.
    let in_mod =
        "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 {\n        x.unwrap()\n    }\n}\n";
    assert_eq!(rules_for(in_mod), Vec::<&str>::new());
}

// --- no-snapshot-racy ----------------------------------------------------

#[test]
fn snapshot_racy_outside_tests_is_flagged() {
    let src = "fn f(d: &DynArr) -> Vec<u32> {\n    d.snapshot_racy(3)\n}\n";
    assert_eq!(rules_for(src), vec!["no-snapshot-racy"]);
}

#[test]
fn snapshot_racy_is_allowed_in_tests() {
    let src = "fn f(d: &DynArr) -> Vec<u32> {\n    d.snapshot_racy(3)\n}\n";
    assert_eq!(rules_for_test_file(src), Vec::<&str>::new());
}

// --- no-static-mut -------------------------------------------------------

#[test]
fn static_mut_is_flagged_everywhere() {
    let src = "static mut COUNTER: u32 = 0;\n";
    // Flagged in library code AND in test context: there is no sound
    // use of `static mut` anywhere in this workspace.
    assert_eq!(rules_for(src), vec!["no-static-mut"]);
    assert_eq!(rules_for_test_file(src), vec!["no-static-mut"]);
}

// --- no-thread-sleep -----------------------------------------------------

#[test]
fn thread_sleep_in_library_code_is_flagged() {
    let src = "fn f() {\n    std::thread::sleep(std::time::Duration::from_millis(10));\n}\n";
    assert_eq!(rules_for(src), vec!["no-thread-sleep"]);
}

#[test]
fn thread_sleep_is_allowed_in_tests() {
    let src = "fn f() {\n    std::thread::sleep(std::time::Duration::from_millis(10));\n}\n";
    assert_eq!(rules_for_test_file(src), Vec::<&str>::new());
}

// --- suppression mechanisms ----------------------------------------------

#[test]
fn inline_allow_suppresses_one_rule_only() {
    let src = "fn f() {\n    // vet: allow(no-thread-sleep) — fixture exercising suppression.\n    std::thread::sleep(d);\n}\n";
    assert_eq!(rules_for(src), Vec::<&str>::new());
    // The marker names a specific rule; a different rule on the same
    // line still fires.
    let src = "fn f(a: &AtomicUsize) {\n    // vet: allow(no-thread-sleep)\n    a.store(1, Ordering::Release);\n}\n";
    assert_eq!(rules_for(src), vec!["ordering-needs-note"]);
}

#[test]
fn registry_rule_skip_exempts_a_path_prefix() {
    let reg = Registry::parse("[rules.no-thread-sleep]\nskip = [\"crates/bench\"]\n")
        .expect("registry parses");
    let src = "fn f() {\n    std::thread::sleep(d);\n}\n";
    let in_bench = scan_source("crates/bench/src/lib.rs", src, &reg);
    assert!(in_bench.is_empty(), "skipped prefix must be exempt");
    let in_core = scan_source("crates/core/src/lib.rs", src, &reg);
    assert_eq!(in_core.len(), 1, "other paths still enforced");
}

// --- findings carry actionable positions ---------------------------------

#[test]
fn findings_report_rule_path_and_line() {
    let reg = Registry::default();
    let src = "fn f(a: &AtomicUsize) -> usize {\n    a.load(Ordering::Acquire)\n}\n";
    let f = &scan_source("crates/core/src/fixture.rs", src, &reg)[0];
    assert_eq!(f.rule, "ordering-needs-note");
    assert_eq!(f.path, "crates/core/src/fixture.rs");
    assert_eq!(f.line, 2);
    assert!(f.msg.contains("ordering:"), "message must name the fix");
}

// --- the committed workspace passes its own gate -------------------------

#[test]
fn workspace_scans_clean() {
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = snap_vet::find_root(here).expect("workspace root with vet.toml");
    let reg = Registry::parse(
        &std::fs::read_to_string(root.join("vet.toml")).expect("vet.toml readable"),
    )
    .expect("vet.toml parses");
    let report = snap_vet::scan_workspace(&root, &reg).expect("scan succeeds");
    assert!(
        report.findings.is_empty(),
        "workspace must pass snap-vet clean; violations:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {}:{} [{}] {}", f.path, f.line, f.rule, f.msg))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files > 90, "scan must actually cover the workspace");
    assert!(
        report.stats.ordering_sites > 200,
        "the ordering-annotation inventory must be scanned"
    );
}
