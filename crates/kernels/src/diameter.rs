//! Graph diameter estimation.
//!
//! The small-world property — "a low graph diameter" — underpins every
//! complexity claim in the paper (link-cut queries are O(diameter), BFS
//! is O(diameter) parallel phases). This module measures it: exact
//! eccentricity sweeps for small graphs, and the standard double-sweep
//! lower bound (BFS to the farthest vertex, then BFS back) for large
//! ones.

use crate::bfs::{bfs, UNREACHED};
use rayon::prelude::*;
use snap_core::GraphView;

/// Double-sweep lower bound on the diameter of `src`'s component:
/// BFS from `src`, then BFS from the farthest vertex found.
pub fn double_sweep_lower_bound<V: GraphView>(view: &V, src: u32) -> u32 {
    let first = bfs(view, src);
    let far = (0..view.num_vertices())
        .filter(|&v| first.dist[v] != UNREACHED)
        .max_by_key(|&v| first.dist[v])
        .map(|v| v as u32)
        .unwrap_or(src);
    let second = bfs(view, far);
    second.max_distance()
}

/// Exact diameter of the graph's largest component (one BFS per vertex —
/// use on small or sampled snapshots only). Returns 0 for empty graphs.
pub fn exact_diameter<V: GraphView>(view: &V) -> u32 {
    let n = view.num_vertices();
    (0..n as u32)
        .into_par_iter()
        .map(|v| bfs(view, v).max_distance())
        .max()
        .unwrap_or(0)
}

/// Mean finite distance over sampled sources (the "average path length"
/// half of the Watts–Strogatz small-world signature).
pub fn mean_distance_sampled<V: GraphView>(view: &V, sources: &[u32]) -> f64 {
    if sources.is_empty() {
        return 0.0;
    }
    let (sum, cnt) = sources
        .par_iter()
        .map(|&s| {
            let r = bfs(view, s);
            let mut sum = 0u64;
            let mut cnt = 0u64;
            for &d in &r.dist {
                if d != UNREACHED && d > 0 {
                    sum += d as u64;
                    cnt += 1;
                }
            }
            (sum, cnt)
        })
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    if cnt == 0 {
        0.0
    } else {
        sum as f64 / cnt as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_core::CsrGraph;
    use snap_rmat::{Rmat, RmatParams, TimedEdge};

    fn path(k: u32) -> CsrGraph {
        let edges: Vec<TimedEdge> = (0..k - 1).map(|i| TimedEdge::new(i, i + 1, 1)).collect();
        CsrGraph::from_edges_undirected(k as usize, &edges)
    }

    #[test]
    fn path_diameter_exact_and_double_sweep() {
        let g = path(17);
        assert_eq!(exact_diameter(&g), 16);
        // On trees the double sweep is exact from any start.
        for s in [0u32, 8, 16] {
            assert_eq!(double_sweep_lower_bound(&g, s), 16);
        }
    }

    #[test]
    fn double_sweep_never_exceeds_exact() {
        let rm = Rmat::new(RmatParams::paper(8, 4), 6);
        let g = CsrGraph::from_edges_undirected(1 << 8, &rm.edges());
        let exact = exact_diameter(&g);
        for s in [0u32, 7, 99] {
            assert!(double_sweep_lower_bound(&g, s) <= exact);
        }
    }

    #[test]
    fn small_world_instance_has_small_diameter() {
        // The property the paper's link-cut analysis relies on.
        let rm = Rmat::new(RmatParams::paper(12, 8), 7);
        let g = CsrGraph::from_edges_undirected(1 << 12, &rm.edges());
        let hub = (0..g.num_vertices() as u32)
            .max_by_key(|&u| g.out_degree(u))
            .unwrap();
        let lb = double_sweep_lower_bound(&g, hub);
        assert!(
            lb <= 12,
            "R-MAT giant component diameter should be ~log n, got {lb}"
        );
    }

    #[test]
    fn mean_distance_on_path() {
        let g = path(3); // distances from 0: 1, 2 ; from 1: 1, 1 ; from 2: 2, 1
        let all: Vec<u32> = vec![0, 1, 2];
        let mean = mean_distance_sampled(&g, &all);
        assert!((mean - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let g = CsrGraph::from_edges_undirected(1, &[]);
        assert_eq!(exact_diameter(&g), 0);
        assert_eq!(double_sweep_lower_bound(&g, 0), 0);
        assert_eq!(mean_distance_sampled(&g, &[0]), 0.0);
    }
}
