//! Full topology profile of a network — the "characterize this data set"
//! workflow the paper's introduction motivates: degree distribution,
//! clustering, diameter, spanning structure, and central entities, all
//! from one snapshot. Reads an edge-list file if given one, otherwise
//! profiles a synthetic R-MAT instance (and round-trips it through the
//! edge-list format to exercise I/O).
//!
//! ```text
//! cargo run --release --example network_profile [edge_list.txt]
//! ```

use snap::kernels::bc::sample_sources;
use snap::kernels::{
    average_clustering, boruvka_msf, double_sweep_lower_bound, temporal_reach_count,
};
use snap::prelude::*;
use snap::rmat::io;
use snap::util::stats::log2_histogram;

fn main() {
    let edges = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading {path}");
            io::load_edge_list(&path).expect("failed to load edge list")
        }
        None => {
            let rmat = Rmat::new(RmatParams::paper(13, 8), 11);
            let generated = rmat.edges();
            // Round-trip through the text format to prove the I/O path.
            let tmp = std::env::temp_dir().join("snap_profile_demo.txt");
            io::save_edge_list(&tmp, &generated).expect("save failed");
            let loaded = io::load_edge_list(&tmp).expect("reload failed");
            std::fs::remove_file(&tmp).ok();
            assert_eq!(loaded, generated, "edge-list round trip");
            println!("profiling synthetic R-MAT (round-tripped through edge-list I/O)");
            loaded
        }
    };
    let n = io::vertex_bound(&edges);
    let csr = CsrGraph::from_edges_undirected(n, &edges);
    println!(
        "n = {n}, m = {} (directed entries {})",
        edges.len(),
        csr.num_entries()
    );

    // Degree distribution (log2 buckets) — the power-law signature.
    let degrees = (0..n as u32).map(|u| csr.out_degree(u));
    let hist = log2_histogram(degrees);
    println!("degree histogram (bucket i = degrees in [2^i, 2^(i+1))):");
    for (i, c) in hist.iter().enumerate() {
        if *c > 0 {
            println!(
                "  2^{i:<2} {c:>8}  {}",
                "#".repeat(1 + (*c as f64).log2() as usize)
            );
        }
    }
    let max_deg = csr.max_degree();
    println!(
        "max degree {max_deg} vs mean {:.1}",
        csr.num_entries() as f64 / n as f64
    );

    // Small-world signature: clustering + diameter.
    let cc = average_clustering(&csr);
    let hub = (0..n as u32)
        .max_by_key(|&u| csr.out_degree(u))
        .expect("non-empty");
    let diam_lb = double_sweep_lower_bound(&csr, hub);
    println!("average clustering {cc:.4}, diameter lower bound {diam_lb}");

    // Components and spanning structure.
    let labels = connected_components(&csr);
    let comps = snap::kernels::component_count(&labels);
    let msf = boruvka_msf(n, &edges);
    println!(
        "{comps} components; MSF: {} edges, total weight {}",
        msf.edges.len(),
        msf.total_weight
    );

    // Central entities, three ways.
    let sources = sample_sources(n, 128, 5);
    let bc = betweenness_approx(&csr, &sources);
    let cl = snap::kernels::closeness_approx(&csr, &sources);
    let st = snap::kernels::stress_approx(&csr, &sources);
    let top = |scores: &[f64], label: &str| {
        let mut idx: Vec<u32> = (0..n as u32).collect();
        idx.sort_unstable_by(|&a, &b| scores[b as usize].total_cmp(&scores[a as usize]));
        println!("  top-5 by {label}: {:?}", &idx[..5.min(idx.len())]);
    };
    println!("centrality (128 sampled sources):");
    top(&bc, "betweenness");
    top(&cl, "closeness  ");
    top(&st, "stress     ");

    // Temporal reachability from the hub (exact, Kempe semantics).
    let reach = temporal_reach_count(&csr, hub);
    println!(
        "temporal reachability from hub {hub}: {reach} of {n} vertices have a \
         time-respecting path"
    );
}
