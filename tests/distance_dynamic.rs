//! Incremental hop distances under mixed update streams: the
//! [`DistanceIndex`] differentially checked against a from-scratch
//! serial BFS per pinned source, through the reusable harness
//! (`common::differential`).
//!
//! Insertions must be absorbed by bounded relaxation wavefronts and
//! deletions by dirty-marks plus lazy targeted repairs — the
//! zero-full-rebuild assertion in the harness pins that the incremental
//! path, not a rebuild, produced every bit-identical row. The
//! SnapshotManager-level test additionally drives the parallel repair
//! kernel (`par_dist_repair`) before the full-row comparison.

mod common;

use common::differential::{rmat_workload, run_differential, DistPair, Strategy};
use common::rng_for;
use snap::prelude::*;
use snap::util::thread_pool;
use snap_kernels::serial_bfs;

const SUITE: u64 = 0xD157A;

const SOURCES: [u32; 4] = [0, 17, 255, 511];

#[test]
fn index_tracks_bfs_across_strategies_and_threads() {
    for case in 0..2 {
        let w = rmat_workload(SUITE, case, 9, 3, 40, 256);
        for threads in [1usize, 2, 8] {
            run_differential::<DynArr, _, _>(&w, Strategy::Stream, threads, |g| {
                DistPair::new(g, &SOURCES)
            });
            run_differential::<HybridAdj, _, _>(&w, Strategy::Vpart, threads, |g| {
                DistPair::new(g, &SOURCES)
            });
            run_differential::<TreapAdj, _, _>(&w, Strategy::Epart, threads, |g| {
                DistPair::new(g, &SOURCES)
            });
        }
    }
}

#[test]
fn deletion_heavy_streams_stay_on_the_targeted_repair_path() {
    for case in 0..2 {
        let w = rmat_workload(SUITE, 10 + case, 9, 3, 60, 128);
        for threads in [1usize, 2, 8] {
            run_differential::<HybridAdj, _, _>(&w, Strategy::Vpart, threads, |g| {
                DistPair::new(g, &SOURCES)
            });
        }
    }
}

#[test]
fn manager_and_parallel_repair_agree_with_the_oracle() {
    let forced = |threads: usize| {
        ParConfig::default()
            .with_serial_threshold(0)
            .with_threads(threads)
    };
    for case in 0..2 {
        let w = rmat_workload(SUITE, 20 + case, 9, 3, 50, 256);
        let n = w.n as usize;
        for &threads in &[1usize, 2, 8] {
            let hints = CapacityHints::new(w.len() * 2);
            let mgr = SnapshotManager::new(DynGraph::<HybridAdj>::undirected(n, &hints));
            mgr.enable_distances(&SOURCES);
            thread_pool(threads).install(|| {
                for batch in &w.batches {
                    mgr.apply_batch(batch);
                }
            });
            let idx = mgr.distance_index().unwrap();
            // Repair the dirtied rows through the parallel kernel first
            // (forced parallel, so the restricted sweep path runs even
            // for small affected sets), then compare bit-for-bit.
            for &s in &SOURCES {
                snap::par::par_dist_repair(idx, mgr.live(), s, &forced(threads));
            }
            for &s in &SOURCES {
                assert_eq!(
                    mgr.hop_distances(s),
                    serial_bfs(mgr.live(), s).dist,
                    "source {s} @ {threads} threads"
                );
            }
            // Spot queries against the oracle rows.
            let mut rng = rng_for(SUITE, 3, case * 10 + threads as u64);
            let oracle = serial_bfs(mgr.live(), SOURCES[0]).dist;
            for _ in 0..200 {
                let v = rng.next_bounded(n as u64) as u32;
                let want = (oracle[v as usize] != u32::MAX).then_some(oracle[v as usize]);
                assert_eq!(mgr.hop_distance(SOURCES[0], v), want, "vertex {v}");
            }
            assert_eq!(mgr.rebuild_count(), 0, "no CSR rebuild");
            assert_eq!(idx.full_rebuild_count(), 0, "no full recompute");
        }
    }
}
